// Tests of the benchmark harness itself (bench/harness_common):
// instance building, ground-truth computation, per-algorithm runners and
// their embedded verification — the machinery every reported number in
// EXPERIMENTS.md passes through.

#include <gtest/gtest.h>

#include "harness_common.hpp"
#include "matching/verify.hpp"

namespace bpm::bench {
namespace {

SuiteOptions tiny_options() {
  SuiteOptions opt;
  opt.scale = 0.001;  // ~1k-vertex instances
  opt.seed = 5;
  return opt;
}

TEST(Harness, BuildInstanceComputesConsistentGroundTruth) {
  const auto& meta = graph::paper_instances()[0];
  const BuiltInstance bi = build_instance(meta, tiny_options());
  EXPECT_GE(bi.g.num_rows(), 1024);
  EXPECT_EQ(bi.initial_cardinality, bi.init.cardinality());
  EXPECT_LE(bi.initial_cardinality, bi.maximum_cardinality);
  // The HK-based ground truth must agree with the independent reference.
  EXPECT_EQ(bi.maximum_cardinality,
            matching::reference_maximum_cardinality(bi.g));
}

TEST(Harness, BuildSuiteHonoursStride) {
  SuiteOptions opt = tiny_options();
  opt.stride = 14;
  const auto suite = build_suite(opt);
  ASSERT_EQ(suite.size(), 2u);
  EXPECT_EQ(suite[0].meta.id, 1);
  EXPECT_EQ(suite[1].meta.id, 15);
}

TEST(Harness, RunnersReportOkAndConsistentCardinalities) {
  const auto& meta = graph::paper_instances()[3];  // flickr analogue
  const BuiltInstance bi = build_instance(meta, tiny_options());
  device::Device dev({.mode = device::ExecMode::kConcurrent, .num_threads = 4});

  const AlgoResult gpr = run_solver("g-pr-shr", dev, bi);
  const AlgoResult ghkdw = run_solver("g-hkdw", dev, bi);
  const AlgoResult pdbfs = run_solver("p-dbfs", dev, bi, 4);
  const AlgoResult pr = run_solver("seq-pr", dev, bi);

  for (const AlgoResult& r : {gpr, ghkdw, pdbfs, pr}) {
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.cardinality, bi.maximum_cardinality);
    EXPECT_GE(r.seconds, 0.0);
  }
  // Device algorithms carry a modeled time; CPU ones do not.
  EXPECT_GT(gpr.modeled_seconds, 0.0);
  EXPECT_GT(ghkdw.modeled_seconds, 0.0);
  EXPECT_EQ(pdbfs.modeled_seconds, 0.0);
  EXPECT_EQ(pr.modeled_seconds, 0.0);
}

TEST(Harness, DeviceSecondsRespectsNoModel) {
  AlgoResult r;
  r.seconds = 2.0;
  r.modeled_seconds = 0.5;
  SuiteOptions opt;
  opt.no_model = false;
  EXPECT_DOUBLE_EQ(device_seconds(r, opt), 0.5);
  opt.no_model = true;
  EXPECT_DOUBLE_EQ(device_seconds(r, opt), 2.0);
  // CPU algorithms (modeled == 0) always use wall time.
  r.modeled_seconds = 0.0;
  opt.no_model = false;
  EXPECT_DOUBLE_EQ(device_seconds(r, opt), 2.0);
}

TEST(Harness, SuiteOptionsRoundTripThroughCli) {
  CliParser cli("t", "t");
  register_suite_flags(cli, /*default_stride=*/3);
  const char* argv[] = {"t", "--scale", "0.5", "--seed", "9", "--threads",
                        "2", "--no-model"};
  cli.parse(8, argv);
  const SuiteOptions opt = suite_options_from_cli(cli);
  EXPECT_DOUBLE_EQ(opt.scale, 0.5);
  EXPECT_EQ(opt.seed, 9u);
  EXPECT_EQ(opt.stride, 3);
  EXPECT_EQ(opt.threads, 2u);
  EXPECT_TRUE(opt.no_model);
}

TEST(Harness, ModeledTimeScalesWithInstanceSize) {
  // The device model must charge more for a bigger instance of the same
  // class — a basic sanity property of the time model.
  SuiteOptions small = tiny_options();
  SuiteOptions large = tiny_options();
  large.scale = 0.004;
  const auto& meta = graph::paper_instances()[6];  // kron analogue
  const BuiltInstance bi_small = build_instance(meta, small);
  const BuiltInstance bi_large = build_instance(meta, large);
  // Sequential device: deterministic loop counts, so the comparison is
  // not subject to race-dependent variance.
  device::Device dev({.mode = device::ExecMode::kSequential});
  const AlgoResult r_small = run_solver("g-pr-shr", dev, bi_small);
  const AlgoResult r_large = run_solver("g-pr-shr", dev, bi_large);
  EXPECT_TRUE(r_small.ok);
  EXPECT_TRUE(r_large.ok);
  EXPECT_GT(r_large.modeled_seconds, r_small.modeled_seconds);
}

}  // namespace
}  // namespace bpm::bench
