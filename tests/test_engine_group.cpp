// serve::EngineGroup (src/serve/engine_group.hpp): routing policies
// (round-robin fairness, least-loaded idle pick, sticky instance
// affinity with LRU eviction), the engine load gauge behind them
// (device::Engine::add_load/remove_load/load), and the
// failure/shutdown-while-busy edge cases (retired engines stop receiving,
// outstanding leases keep their engine alive).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "serve/engine_group.hpp"

namespace bpm::serve {
namespace {

TEST(Routing, ParsesAndNamesEveryPolicy) {
  EXPECT_EQ(parse_routing("round-robin"), Routing::kRoundRobin);
  EXPECT_EQ(parse_routing("least-loaded"), Routing::kLeastLoaded);
  EXPECT_EQ(parse_routing("affinity"), Routing::kAffinity);
  for (const Routing r : {Routing::kRoundRobin, Routing::kLeastLoaded,
                          Routing::kAffinity})
    EXPECT_EQ(parse_routing(routing_name(r)), r);  // round-trip
  EXPECT_THROW((void)parse_routing("sideways"), std::invalid_argument);
}

TEST(EngineGroup, EngineLoadGaugeTracksLeases) {
  EngineGroup group({.engines = 1});
  const auto& engine = group.engine(0);
  EXPECT_DOUBLE_EQ(engine->load(), 0.0);
  {
    const EngineGroup::Lease a = group.acquire(1, 8.0);
    const EngineGroup::Lease b = group.acquire(2, 4.0);
    EXPECT_DOUBLE_EQ(engine->load(), 12.0);
    EXPECT_EQ(a.index(), 0u);
  }
  EXPECT_DOUBLE_EQ(engine->load(), 0.0);  // released with the leases

  // A zero (or negative) work estimate still charges a unit, so holding
  // a lease is never invisible to the least-loaded policy.
  const EngineGroup::Lease c = group.acquire(3, 0.0);
  EXPECT_DOUBLE_EQ(engine->load(), 1.0);
}

TEST(EngineGroup, RoundRobinIsFair) {
  EngineGroup group({.engines = 4, .routing = Routing::kRoundRobin});
  // 12 dispatches of wildly different fingerprints and work estimates:
  // round-robin ignores both and deals every engine exactly 3.
  for (int i = 0; i < 12; ++i)
    (void)group.acquire(static_cast<std::uint64_t>(i * 7919),
                        static_cast<double>(1 + i * 100));
  for (const EngineGroupEngineStats& s : group.stats())
    EXPECT_EQ(s.dispatches, 3u) << "engine " << s.index;
}

TEST(EngineGroup, LeastLoadedPicksTheIdleEngine) {
  EngineGroup group({.engines = 3, .routing = Routing::kLeastLoaded});
  EngineGroup::Lease a = group.acquire(1, 10.0);
  EngineGroup::Lease b = group.acquire(2, 10.0);
  EngineGroup::Lease c = group.acquire(3, 10.0);
  // A cold pool fans out: three held leases land on three engines.
  const std::set<unsigned> spread = {a.index(), b.index(), c.index()};
  EXPECT_EQ(spread.size(), 3u);

  // Release one: the next dispatch must land on the now-idle engine.
  const unsigned freed = b.index();
  b.release();
  EXPECT_FALSE(b);
  const EngineGroup::Lease d = group.acquire(4, 10.0);
  EXPECT_EQ(d.index(), freed);
}

TEST(EngineGroup, AffinityIsStickyUntilEviction) {
  EngineGroup group({.engines = 3, .routing = Routing::kAffinity,
                     .affinity_capacity = 2});
  const unsigned home = group.acquire(100, 5.0).index();
  // Sticky: the fingerprint keeps landing on its engine even though the
  // other engines are completely idle...
  for (int i = 0; i < 5; ++i)
    EXPECT_EQ(group.acquire(100, 5.0).index(), home);
  // ...and even while that engine is the most loaded one in the pool.
  const EngineGroup::Lease busy = group.acquire(100, 50.0);
  EXPECT_EQ(busy.index(), home);
  EXPECT_EQ(group.acquire(100, 5.0).index(), home);

  // A new fingerprint takes the least-loaded pick — not the warm engine.
  const unsigned other = group.acquire(200, 5.0).index();
  EXPECT_NE(other, home);
  EXPECT_EQ(group.acquire(200, 5.0).index(), other);  // sticky too

  // Capacity 2: pinning a third fingerprint evicts the least-recently
  // dispatched mapping (fingerprint 100), which then re-pins elsewhere —
  // its old engine is the busiest, so the fresh pick avoids it.
  (void)group.acquire(300, 5.0);
  EXPECT_NE(group.acquire(100, 5.0).index(), home);
}

TEST(EngineGroup, RetireStopsRoutingAndDropsAffinity) {
  EngineGroup group({.engines = 2, .routing = Routing::kAffinity});
  const unsigned home = group.acquire(7, 5.0).index();
  group.retire(home);
  EXPECT_TRUE(group.retired(home));
  group.retire(home);  // idempotent
  // The sticky mapping died with the engine: dispatches re-route.
  for (int i = 0; i < 4; ++i)
    EXPECT_NE(group.acquire(7, 5.0).index(), home);
  const auto stats = group.stats();
  EXPECT_TRUE(stats[home].retired);

  // Round-robin skips a retired engine without losing fairness among the
  // survivors.
  EngineGroup rr({.engines = 3, .routing = Routing::kRoundRobin});
  rr.retire(1);
  for (int i = 0; i < 6; ++i)
    EXPECT_NE(rr.acquire(static_cast<std::uint64_t>(i), 1.0).index(), 1u);
  EXPECT_EQ(rr.stats()[0].dispatches, 3u);
  EXPECT_EQ(rr.stats()[2].dispatches, 3u);

  // Every engine retired: acquire still succeeds (a draining service
  // must make progress), falling back over the retired pool.
  rr.retire(0);
  rr.retire(2);
  const EngineGroup::Lease last = rr.acquire(9, 1.0);
  EXPECT_TRUE(last);
}

TEST(EngineGroup, ShutdownWhileBusyKeepsLeasedEnginesAlive) {
  EngineGroup::Lease survivor;
  {
    EngineGroup group({.engines = 2});
    survivor = group.acquire(1, 3.0);
    group.retire(survivor.index());  // "failure" with the lease still out
  }  // the whole group is gone; the lease holds the engine shared_ptr
  ASSERT_TRUE(survivor);
  device::Device stream(survivor.engine());
  std::atomic<int> hits{0};
  stream.launch(8, [&](std::int64_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 8);
  EXPECT_DOUBLE_EQ(survivor.engine()->load(), 3.0);
  survivor.release();
  EXPECT_FALSE(survivor);
}

TEST(EngineGroup, ConcurrentAcquiresBalanceAndNeverLeakLoad) {
  // The TSan-facing case: many threads acquire/release against one group
  // under every policy; afterwards all load is released and the dispatch
  // counters add up.
  for (const Routing routing : {Routing::kRoundRobin, Routing::kLeastLoaded,
                                Routing::kAffinity}) {
    EngineGroup group({.engines = 3, .routing = routing});
    std::vector<std::thread> threads;
    threads.reserve(4);
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&group, t] {
        for (int i = 0; i < 25; ++i) {
          const EngineGroup::Lease lease = group.acquire(
              static_cast<std::uint64_t>((t * 25 + i) % 5), 2.0);
          device::Device stream(lease.engine());
          stream.launch(4, [](std::int64_t) {});
        }
      });
    }
    for (std::thread& t : threads) t.join();
    std::uint64_t dispatches = 0;
    for (const EngineGroupEngineStats& s : group.stats()) {
      dispatches += s.dispatches;
      EXPECT_DOUBLE_EQ(s.load, 0.0);
      EXPECT_EQ(s.device.streams_opened, s.device.streams_retired);
    }
    EXPECT_EQ(dispatches, 100u) << routing_name(routing);
  }
}

}  // namespace
}  // namespace bpm::serve
