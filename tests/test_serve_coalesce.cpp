// Randomized serve conformance (src/serve/): a coalescing, multi-engine
// MatchingService must deliver, per ticket, exactly what a sequential
// single-engine service delivers for the same request stream — identical
// ok flags and matching cardinalities — no matter how requests were
// batched or which engine served them.  Streams mix instances,
// priorities, deadlines (generous on purpose: a fired deadline would make
// the comparison timing-dependent), and duplicate submissions.  Includes
// a deterministic duplicate-burst coalescing check and a TSan-targeted
// stress case (many clients, affinity routing, ledger churn); both this
// suite and test_engine_group run in the CI TSan job.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "serve/service.hpp"
#include "util/rng.hpp"

namespace bpm::serve {
namespace {

namespace gen = graph::gen;

/// A registered sleeping solver: holds workers busy for a deterministic
/// window so bursts can pile up in the queue before the first dispatch.
class CoalesceSleepSolver final : public Solver {
 public:
  [[nodiscard]] std::string name() const override {
    return "coalesce-test-sleep";
  }
  [[nodiscard]] SolverCaps caps() const override {
    return {.deterministic = true, .exact = false};
  }
  bool set_option(std::string_view key, std::string_view value) override {
    if (key != "ms") return false;
    ms_ = std::stoi(std::string(value));
    return true;
  }
  [[nodiscard]] SolveResult run(
      const SolveContext&, const graph::BipartiteGraph&,
      const matching::Matching& init) const override {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms_));
    SolveResult out{init, {}};
    out.stats.cardinality = init.cardinality();
    return out;
  }

 private:
  int ms_ = 20;
};

[[maybe_unused]] const bool kRegistered = [] {
  SolverRegistry::instance().add(
      "coalesce-test-sleep",
      [] { return std::make_unique<CoalesceSleepSolver>(); });
  return true;
}();

struct StreamRequest {
  std::size_t instance = 0;
  std::string spec;
  int priority = 0;
  double deadline_ms = 0.0;
};

std::vector<graph::BipartiteGraph> conformance_graphs() {
  std::vector<graph::BipartiteGraph> graphs;
  graphs.push_back(gen::random_uniform(140, 150, 620, 11));
  graphs.push_back(gen::planted_perfect(90, 2.0, 5));
  graphs.push_back(gen::chung_lu(120, 130, 4.0, 2.4, 7));
  return graphs;
}

const std::vector<std::string>& spec_pool() {
  // Exact solvers only: their cardinality is the instance maximum on
  // every run, so per-ticket equality holds even for the racy kernels
  // whose edge sets depend on interleaving.
  static const std::vector<std::string> specs = {
      "hk", "pf", "g-pr-shr", "g-pr-shr:k=1.5", "p-dbfs", "seq-pr"};
  return specs;
}

std::vector<StreamRequest> random_stream(std::uint64_t seed, std::size_t n,
                                         std::size_t instances) {
  Rng rng(seed);
  std::vector<StreamRequest> out;
  out.reserve(n);
  while (out.size() < n) {
    if (!out.empty() && rng.below(100) < 30) {
      // Duplicate submission: exactly what coalescing dedups.
      out.push_back(out[rng.below(out.size())]);
      continue;
    }
    StreamRequest r;
    r.instance = rng.below(instances);
    r.spec = spec_pool()[rng.below(spec_pool().size())];
    r.priority = static_cast<int>(rng.below(5)) - 2;
    r.deadline_ms = rng.below(4) == 0 ? 60'000.0 : 0.0;
    out.push_back(r);
  }
  return out;
}

struct Served {
  bool ok = false;
  graph::index_t cardinality = 0;
};

/// Registers the conformance graphs, submits the whole stream, waits for
/// every ticket, and returns per-ticket outcomes in submission order.
std::vector<Served> run_stream(const ServiceOptions& options,
                               const std::vector<StreamRequest>& stream) {
  MatchingService svc(options);
  std::vector<std::size_t> handles;
  std::size_t next = 0;
  for (graph::BipartiteGraph& g : conformance_graphs())
    handles.push_back(
        svc.add_instance("g" + std::to_string(next++), std::move(g)).handle);

  std::vector<Submission> subs;
  subs.reserve(stream.size());
  for (const StreamRequest& r : stream)
    subs.push_back(svc.submit({.instance = handles[r.instance],
                               .spec = SolverSpec::parse(r.spec),
                               .priority = r.priority,
                               .deadline_ms = r.deadline_ms}));

  std::vector<Served> out(stream.size());
  for (std::size_t i = 0; i < subs.size(); ++i) {
    EXPECT_TRUE(subs[i].accepted) << subs[i].reason;  // queue sized for all
    if (!subs[i].accepted) continue;
    const Response r = subs[i].future.get();
    EXPECT_TRUE(r.ok) << "request " << i << " (" << stream[i].spec
                      << "): " << r.error;
    out[i] = {r.ok, r.stats.cardinality};
  }
  return out;
}

TEST(ServeConformance, CoalescingMultiEngineMatchesSequentialReference) {
  const std::size_t instances = conformance_graphs().size();
  for (const std::uint64_t seed : {11ull, 22ull, 33ull}) {
    const std::vector<StreamRequest> stream =
        random_stream(seed, 48, instances);

    ServiceOptions reference;
    reference.workers = 1;
    reference.queue_depth = stream.size() + 1;
    reference.coalesce = false;  // engines = 1: the serial baseline
    const std::vector<Served> want = run_stream(reference, stream);

    for (const Routing routing : {Routing::kRoundRobin,
                                  Routing::kLeastLoaded,
                                  Routing::kAffinity}) {
      ServiceOptions options;
      options.workers = 3;
      options.queue_depth = stream.size() + 1;
      options.cache = std::make_shared<ResultCache>();
      options.engines = 3;
      options.routing = routing;
      options.coalesce = true;
      options.coalesce_limit = 6;
      const std::vector<Served> got = run_stream(options, stream);

      ASSERT_EQ(got.size(), want.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].ok, want[i].ok)
            << "seed " << seed << " routing " << routing_name(routing)
            << " request " << i << " (" << stream[i].spec << ")";
        EXPECT_EQ(got[i].cardinality, want[i].cardinality)
            << "seed " << seed << " routing " << routing_name(routing)
            << " request " << i << " (" << stream[i].spec << ")";
      }
    }
  }
}

TEST(ServeConformance, DuplicateBurstCoalescesIntoOneSolve) {
  // Two blockers pin both workers while 32 identical requests pile up;
  // the first free worker must then take them as ONE dispatch batch,
  // solve once, and fan the result back out to every ticket.
  auto cache = std::make_shared<ResultCache>();
  ServiceOptions options;
  options.workers = 2;
  options.queue_depth = 64;
  options.cache = cache;
  options.engines = 2;
  options.coalesce = true;
  options.coalesce_limit = 0;  // unbounded batch
  MatchingService svc(options);
  // Two *distinct* blocker instances: same-instance blockers would
  // coalesce into one dispatch and leave a worker free to nibble at the
  // burst before it is fully queued.
  const std::size_t blocker_handles[] = {
      svc.add_instance("blocker-a", gen::complete_bipartite(6, 6)).handle,
      svc.add_instance("blocker-b", gen::complete_bipartite(7, 7)).handle};
  const auto burst_handle =
      svc.add_instance("burst", gen::random_uniform(140, 150, 620, 11))
          .handle;
  const graph::index_t maximum =
      svc.instances().get(burst_handle).maximum_cardinality;

  std::vector<Submission> blockers;
  for (const std::size_t handle : blocker_handles)
    blockers.push_back(
        svc.submit({.instance = handle,
                    .spec = SolverSpec::parse("coalesce-test-sleep:ms=250")}));
  for (const Submission& b : blockers) ASSERT_TRUE(b.accepted) << b.reason;

  std::vector<Submission> burst;
  for (int i = 0; i < 32; ++i)
    burst.push_back(svc.submit(
        {.instance = burst_handle, .spec = SolverSpec::parse("hk")}));
  std::size_t cached = 0;
  for (const Submission& sub : burst) {
    ASSERT_TRUE(sub.accepted) << sub.reason;
    const Response r = sub.future.get();
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.stats.cardinality, maximum);
    if (r.cached) {
      ++cached;
      EXPECT_EQ(r.service_ms, 0.0);
      EXPECT_EQ(r.stats.wall_ms, 0.0);  // cost is never re-charged
    }
  }
  for (const Submission& b : blockers) (void)b.future.get();

  // 31 of 32 rode the batch: one solve, one cache miss, zero re-solves.
  // All 31 are in-batch fan-out, NOT ResultCache hits — the duplicates
  // never even probe the cache.  (The two blocker dispatches contribute
  // one miss + one entry each.)
  EXPECT_EQ(cached, 31u);
  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.coalesced, 31u);
  EXPECT_EQ(s.fanout_hits, 31u);
  EXPECT_EQ(s.cache_hits, 0u);
  EXPECT_EQ(cache->stats().misses, 3u);
  EXPECT_EQ(cache->stats().entries, 3u);
  EXPECT_EQ(cache->stats().hits, 0u);
}

TEST(ServeConformance, TSanStressClientsHammerCoalescingMultiEngine) {
  // The race-hunting configuration: 4 client threads submitting mixed
  // duplicate-heavy traffic against 4 workers x 3 engines with affinity
  // routing, a sharded cache, an aggressively small completed-ticket
  // ledger (GC races with polling), and concurrent poll() calls.
  ServiceOptions options;
  options.workers = 4;
  options.queue_depth = 512;
  options.cache = std::make_shared<ResultCache>(CacheOptions{.shards = 4});
  options.engines = 3;
  options.routing = Routing::kAffinity;
  options.coalesce = true;
  options.coalesce_limit = 8;
  options.completed_ticket_retention = 16;
  MatchingService svc(options);
  const auto a =
      svc.add_instance("a", gen::random_uniform(120, 130, 540, 3)).handle;
  const auto b = svc.add_instance("b", gen::planted_perfect(80, 2.0, 9)).handle;
  const graph::index_t max_a = svc.instances().get(a).maximum_cardinality;
  const graph::index_t max_b = svc.instances().get(b).maximum_cardinality;

  const std::vector<std::string> specs = {"hk", "pf", "g-pr-shr"};
  std::atomic<int> bad{0};
  std::vector<std::thread> clients;
  clients.reserve(4);
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(static_cast<std::uint64_t>(c) + 77);
      for (int i = 0; i < 24; ++i) {
        const bool use_a = rng.below(2) == 0;
        Submission sub = svc.submit(
            {.instance = use_a ? a : b,
             .spec = SolverSpec::parse(specs[rng.below(specs.size())]),
             .priority = static_cast<int>(rng.below(3))});
        if (!sub.accepted) {
          ++bad;
          continue;
        }
        // Hammer poll concurrently with completion and ledger GC; any
        // state is legal here (pending, done, or already evicted) — the
        // correctness check rides the future below.
        (void)svc.poll(sub.ticket);
        const Response r = sub.future.get();
        if (!r.ok || r.stats.cardinality != (use_a ? max_a : max_b)) ++bad;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  svc.drain();
  EXPECT_EQ(bad.load(), 0);
  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.completed, 96u);
  EXPECT_EQ(s.failed, 0u);
  EXPECT_LE(s.tickets_retained, 16u);
  EXPECT_GE(s.evicted_tickets, 96u - 16u);
}

}  // namespace
}  // namespace bpm::serve
