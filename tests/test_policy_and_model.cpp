// Unit tests for the global-relabeling policy (GETITERGR) and the device
// time model — small pieces whose constants gate every experiment.

#include <gtest/gtest.h>

#include "core/relabel_policy.hpp"
#include "device/device.hpp"
#include "graph/generators.hpp"

namespace bpm {
namespace {

using gpu::GprOptions;
using gpu::RelabelStrategy;

// --------------------------------------------------------------- policy ----

GprOptions adaptive(double k) {
  GprOptions o;
  o.strategy = RelabelStrategy::kAdaptive;
  o.k = k;
  return o;
}

GprOptions fixed(double k) {
  GprOptions o;
  o.strategy = RelabelStrategy::kFixed;
  o.k = k;
  return o;
}

TEST(RelabelPolicy, FixedAddsK) {
  EXPECT_EQ(gpu::next_global_relabel_loop(fixed(10), /*max_level=*/999, 5), 15);
  EXPECT_EQ(gpu::next_global_relabel_loop(fixed(50), 2, 0), 50);
}

TEST(RelabelPolicy, AdaptiveScalesWithMaxLevel) {
  EXPECT_EQ(gpu::next_global_relabel_loop(adaptive(0.5), 10, 0), 5);
  EXPECT_EQ(gpu::next_global_relabel_loop(adaptive(2.0), 10, 3), 23);
  // Deeper BFS -> longer interval, same k.
  EXPECT_LT(gpu::next_global_relabel_loop(adaptive(0.7), 4, 0),
            gpu::next_global_relabel_loop(adaptive(0.7), 400, 0));
}

TEST(RelabelPolicy, IntervalNeverBelowOne) {
  // k·maxLevel can round to zero; the policy must still make progress.
  EXPECT_EQ(gpu::next_global_relabel_loop(adaptive(0.1), 2, 7), 8);
  EXPECT_EQ(gpu::next_global_relabel_loop(fixed(0.2), 0, 7), 8);
}

TEST(RelabelPolicy, RoundsToNearest) {
  // 0.7 * 5 = 3.5 -> 4 (llround half-up).
  EXPECT_EQ(gpu::next_global_relabel_loop(adaptive(0.7), 5, 0), 4);
  // 0.3 * 5 = 1.5 -> 2.
  EXPECT_EQ(gpu::next_global_relabel_loop(adaptive(0.3), 5, 0), 2);
}

// ----------------------------------------------------------- time model ----

TEST(DeviceModel, ChargesLaunchLatencyPerLaunch) {
  device::Device dev({.mode = device::ExecMode::kSequential});
  EXPECT_DOUBLE_EQ(dev.modeled_ms(), 0.0);
  dev.launch(0, [](std::int64_t) {});
  const double one_launch = dev.modeled_ms();
  EXPECT_NEAR(one_launch, device::DeviceModel{}.launch_latency_us / 1e3, 1e-9);
  dev.launch(0, [](std::int64_t) {});
  EXPECT_NEAR(dev.modeled_ms(), 2 * one_launch, 1e-9);
}

TEST(DeviceModel, ChargesItems) {
  device::Device dev({.mode = device::ExecMode::kSequential});
  dev.launch(1'000'000, [](std::int64_t) {});
  const device::DeviceModel m;
  const double want_ms =
      (m.launch_latency_us + 1e6 * m.ns_per_item * 1e-3) / 1e3;
  EXPECT_NEAR(dev.modeled_ms(), want_ms, want_ms * 1e-9);
}

TEST(DeviceModel, ChargesAccountedWork) {
  device::Device dev({.mode = device::ExecMode::kSequential});
  dev.launch_accounted(10, [](std::int64_t) -> std::int64_t { return 100; });
  const device::DeviceModel m;
  // A 10-thread grid cannot saturate the 448-lane device: each item is
  // its own lane, and the critical path (lanes · max lane work = 448 ·
  // 100) dominates the 1000 total work units.
  const double want_ms =
      (m.launch_latency_us +
       (10 * m.ns_per_item + 448.0 * 100 * m.ns_per_work) * 1e-3) /
      1e3;
  EXPECT_NEAR(dev.modeled_ms(), want_ms, want_ms * 1e-9);
}

TEST(DeviceModel, StragglerLaneDominatesSkewedWork) {
  // One hub item with the whole graph's work among uniform items: the
  // contiguous-item lane holding the hub bounds the launch from below —
  // exactly the serialization a one-thread-per-column push kernel
  // suffers on a degree-skewed graph.
  device::Device dev({.mode = device::ExecMode::kSequential});
  const std::int64_t n = 8960;  // 20 items per model lane
  dev.launch_accounted(n, [](std::int64_t i) -> std::int64_t {
    return i == 0 ? 100000 : 1;
  });
  const device::DeviceModel m;
  // Lane 0 holds the hub plus 19 unit items: critical = 448 * 100019.
  const double want_ms =
      (m.launch_latency_us +
       (static_cast<double>(n) * m.ns_per_item +
        448.0 * 100019 * m.ns_per_work) *
           1e-3) /
      1e3;
  EXPECT_NEAR(dev.modeled_ms(), want_ms, want_ms * 1e-9);
}

TEST(DeviceModel, LanesZeroDisablesStragglerTerm) {
  device::DeviceOptions opt{.mode = device::ExecMode::kSequential};
  opt.model.lanes = 0;
  device::Device dev(opt);
  dev.launch_accounted(10, [](std::int64_t) -> std::int64_t { return 100; });
  const device::DeviceModel m;
  const double want_ms =
      (m.launch_latency_us + (10 * m.ns_per_item + 1000 * m.ns_per_work) * 1e-3) /
      1e3;
  EXPECT_NEAR(dev.modeled_ms(), want_ms, want_ms * 1e-9);
}

TEST(DeviceModel, ChargeWorkWithoutLaunch) {
  device::Device dev({.mode = device::ExecMode::kSequential});
  dev.charge_work(1000);
  const device::DeviceModel m;
  EXPECT_NEAR(dev.modeled_ms(), 1000 * m.ns_per_work * 1e-6, 1e-12);
  EXPECT_EQ(dev.launches(), 0u);  // no launch was counted
}

TEST(DeviceModel, AccountedWorkIdenticalAcrossModes) {
  // The work tally is algorithmic, so sequential and concurrent execution
  // must model identically for a deterministic kernel.
  auto run = [](device::ExecMode mode) {
    device::Device dev({.mode = mode, .num_threads = 4});
    dev.launch_accounted(1000, [](std::int64_t i) -> std::int64_t {
      return i % 7;
    });
    return dev.modeled_ms();
  };
  EXPECT_DOUBLE_EQ(run(device::ExecMode::kSequential),
                   run(device::ExecMode::kConcurrent));
}

TEST(DeviceModel, ResetClearsAccumulator) {
  device::Device dev({.mode = device::ExecMode::kSequential});
  dev.launch(100, [](std::int64_t) {});
  EXPECT_GT(dev.modeled_ms(), 0.0);
  dev.reset_modeled_time();
  EXPECT_DOUBLE_EQ(dev.modeled_ms(), 0.0);
}

TEST(DeviceModel, HugetraceAnchorFromDesignDoc) {
  // DESIGN.md D9 sanity anchor: ~3000 level kernels over 4.6M rows model
  // to ≈ 2.8 s — within 20% of the paper's 2.71 s for hugetrace-00000.
  const device::DeviceModel m;
  const double per_level_us = m.launch_latency_us + 4.6e6 * m.ns_per_item * 1e-3;
  const double total_s = 3000 * per_level_us / 1e6;
  EXPECT_NEAR(total_s, 2.71, 0.55);
}

}  // namespace
}  // namespace bpm
