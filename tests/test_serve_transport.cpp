// serve::SocketTransport + serve::LineClient (src/serve/): the socket
// layer multiplexing N concurrent clients onto one MatchingService.
// Under test: end-to-end request/response over real TCP, concurrent
// client correctness, per-connection quota and auth enforcement, the
// per-connection line budget (terminated and unterminated oversized
// input), the malformed-input never-crash guarantee over the wire, the
// `stats` per-client accounting lines, and clean shutdown — both by a
// client's `shutdown` command and by stop() mid-connection.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.hpp"
#include "serve/session.hpp"
#include "serve/transport.hpp"

namespace bpm::serve {
namespace {

ServiceOptions tiny_service_options() {
  ServiceOptions opt;
  opt.workers = 2;
  opt.queue_depth = 256;
  return opt;
}

/// Service + context + transport on an ephemeral port, torn down in
/// reverse order.
struct Server {
  explicit Server(TransportOptions topt = TransportOptions(),
                  ServiceOptions sopt = tiny_service_options())
      : service(sopt),
        context(service),
        transport(context, std::move(topt)) {}
  ~Server() {
    transport.stop();
    service.shutdown();
  }
  MatchingService service;
  SessionContext context;
  SocketTransport transport;

  [[nodiscard]] LineClient client() const {
    return LineClient("127.0.0.1", transport.port());
  }
};

TEST(ServeTransport, EndToEndRequestResponse) {
  Server server;
  LineClient client = server.client();
  client.send_line("gen a planted 60 1.0 5");
  auto line = client.recv_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_TRUE(line->starts_with("instance a handle="));

  client.send_line("submit a hk");
  line = client.recv_line();
  ASSERT_TRUE(line.has_value());
  ASSERT_TRUE(line->starts_with("ticket "));
  client.send_line("wait " + line->substr(7));
  line = client.recv_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_TRUE(line->starts_with("result ticket="));
  EXPECT_NE(line->find(" ok=1 "), std::string::npos);
  EXPECT_NE(line->find(" cardinality=60 "), std::string::npos);

  client.send_line("metrics");
  line = client.recv_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_TRUE(line->starts_with("{"));  // registry snapshot JSON

  // stats: service lines, then per-client accounting, then the
  // `transport ...` summary LAST.
  client.send_line("stats");
  bool saw_client_line = false;
  std::optional<std::string> summary;
  for (std::optional<std::string> l; (l = client.recv_line());) {
    if (l->starts_with("client id=")) saw_client_line = true;
    if (l->starts_with("transport ")) {
      summary = *l;
      break;
    }
  }
  EXPECT_TRUE(saw_client_line);
  ASSERT_TRUE(summary.has_value());
  EXPECT_NE(summary->find("open=1"), std::string::npos);
  EXPECT_NE(summary->find("accepted=1"), std::string::npos);
}

TEST(ServeTransport, ConcurrentClientsAllCorrect) {
  Server server;
  {
    LineClient setup = server.client();
    setup.send_line("gen g1 planted 80 1.0 3");
    setup.send_line("gen g2 planted 50 0.5 4");
    ASSERT_TRUE(setup.recv_line().has_value());
    ASSERT_TRUE(setup.recv_line().has_value());
  }
  constexpr int kClients = 6;
  constexpr int kRounds = 4;
  std::atomic<int> good{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c)
    threads.emplace_back([&, c] {
      LineClient client = server.client();
      for (int r = 0; r < kRounds; ++r) {
        const bool first = (c + r) % 2 == 0;
        const std::string instance = first ? "g1" : "g2";
        const std::string cardinality = first ? "cardinality=80" :
                                                "cardinality=50";
        client.send_line("submit " + instance +
                         ((c + r) % 3 == 0 ? " hk" : " g-pr-shr"));
        const auto ticket = client.recv_line();
        if (!ticket || !ticket->starts_with("ticket ")) return;
        client.send_line("wait " + ticket->substr(7));
        const auto result = client.recv_line();
        if (result && result->find(" ok=1 ") != std::string::npos &&
            result->find(cardinality) != std::string::npos)
          good.fetch_add(1, std::memory_order_relaxed);
      }
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(good.load(), kClients * kRounds);
  const TransportStats stats = server.transport.stats();
  EXPECT_EQ(stats.accepted, kClients + 1u);
  EXPECT_EQ(stats.errors, 0u);
}

TEST(ServeTransport, QuotaRejectionOverSocket) {
  TransportOptions topt;
  topt.session.quota = 3;
  Server server(topt);
  LineClient client = server.client();
  // drain answers a single line, so quota accounting is easy to count.
  for (int i = 0; i < 3; ++i) {
    client.send_line("drain");
    const auto line = client.recv_line();
    ASSERT_TRUE(line.has_value());
    EXPECT_EQ(*line, "drained");
  }
  client.send_line("drain");
  const auto line = client.recv_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_TRUE(line->starts_with("error code=quota-exceeded")) << *line;

  const std::vector<TransportClientStats> clients =
      server.transport.client_stats();
  ASSERT_EQ(clients.size(), 1u);
  EXPECT_EQ(clients[0].requests, 3u);
  EXPECT_EQ(clients[0].quota_rejections, 1u);
  EXPECT_EQ(clients[0].quota, 3u);
}

TEST(ServeTransport, AuthRequiredOverSocket) {
  TransportOptions topt;
  topt.session.auth_token = "hunter2";
  Server server(topt);
  LineClient client = server.client();
  client.send_line("drain");
  auto line = client.recv_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_TRUE(line->starts_with("error code=unauthorized"));
  client.send_line("auth wrong");
  line = client.recv_line();
  EXPECT_TRUE(line->starts_with("error code=unauthorized"));
  client.send_line("auth hunter2");
  line = client.recv_line();
  EXPECT_EQ(*line, "ok auth");
  client.send_line("drain");
  line = client.recv_line();
  EXPECT_EQ(*line, "drained");
}

TEST(ServeTransport, OversizedTerminatedLineAnswersErrorAndCloses) {
  TransportOptions topt;
  topt.session.limits.max_line_bytes = 128;
  Server server(topt);
  LineClient client = server.client();
  client.send_line("submit " + std::string(300, 'a') + " hk");
  const auto line = client.recv_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_TRUE(line->starts_with("error code=line-too-long")) << *line;
  // The session ended: the server closes after flushing the error.
  EXPECT_FALSE(client.recv_line(2000).has_value());
}

TEST(ServeTransport, OversizedUnterminatedLineAnswersErrorAndCloses) {
  TransportOptions topt;
  topt.session.limits.max_line_bytes = 128;
  Server server(topt);
  LineClient client = server.client();
  // No newline ever arrives — the transport must not buffer forever.
  client.send_raw(std::string(4096, 'x'));
  const auto line = client.recv_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_TRUE(line->starts_with("error code=line-too-long")) << *line;
  EXPECT_FALSE(client.recv_line(2000).has_value());
}

TEST(ServeTransport, MalformedCorpusOverSocketThenStillAlive) {
  Server server;
  LineClient client = server.client();
  const char* corpus[] = {
      "submit foo g-pr prio=abc",
      "gen broken uniform -5 10 100 1",
      "gen broken planted 10 1e300 1",
      "poll 184467440737095516150",
      "wait not-a-ticket",
      "submit",
      "unknown-command a b c",
      "load broken /nonexistent/file.mtx",
      "trace-dump",
      "gen x huge 10 10 4.0 1.5 10 1",
  };
  for (const char* probe : corpus) {
    client.send_line(probe);
    const auto line = client.recv_line();
    ASSERT_TRUE(line.has_value()) << probe;
    EXPECT_TRUE(line->starts_with("error ")) << *line;
  }
  // Same connection still serves valid work.
  client.send_line("gen ok planted 30 0.0 2");
  auto line = client.recv_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_TRUE(line->starts_with("instance ok"));
  client.send_line("submit ok hk");
  line = client.recv_line();
  ASSERT_TRUE(line && line->starts_with("ticket "));
  client.send_line("wait " + line->substr(7));
  line = client.recv_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_NE(line->find("cardinality=30"), std::string::npos);
  EXPECT_EQ(server.transport.stats().errors, std::size(corpus));
}

TEST(ServeTransport, ShutdownCommandUnblocksWaitShutdown) {
  Server server;
  std::atomic<bool> unblocked{false};
  std::thread waiter([&] {
    server.transport.wait_shutdown();
    unblocked.store(true);
  });
  LineClient client = server.client();
  client.send_line("gen a planted 20 0.0 1");
  ASSERT_TRUE(client.recv_line().has_value());
  client.send_line("shutdown");
  const auto line = client.recv_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(*line, "ok shutdown");
  waiter.join();
  EXPECT_TRUE(unblocked.load());
  EXPECT_TRUE(server.transport.shutdown_requested());
}

TEST(ServeTransport, StopMidConnectionIsCleanAndPrompt) {
  auto server = std::make_unique<Server>();
  LineClient client = server->client();
  client.send_line("gen a planted 20 0.0 1");
  ASSERT_TRUE(client.recv_line().has_value());
  // Leave a half-written line in the server's input buffer, then stop.
  client.send_raw("submit a h");
  const auto begin = std::chrono::steady_clock::now();
  server->transport.stop();
  const auto took = std::chrono::steady_clock::now() - begin;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(took)
                .count(),
            5000);
  // The client observes EOF, not a hang.
  EXPECT_FALSE(client.recv_line(2000).has_value());
  server.reset();  // double-stop via the destructor must be a no-op
}

TEST(ServeTransport, RefusesConnectionsOverMaxClients) {
  TransportOptions topt;
  topt.max_clients = 1;
  Server server(topt);
  LineClient first = server.client();
  first.send_line("drain");
  ASSERT_TRUE(first.recv_line().has_value());  // fully admitted
  LineClient second = server.client();
  const auto line = second.recv_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_TRUE(line->starts_with("error code=unavailable")) << *line;
  EXPECT_FALSE(second.recv_line(2000).has_value());  // then closed
  // The admitted client is unaffected.
  first.send_line("drain");
  const auto again = first.recv_line();
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*again, "drained");
}

TEST(ServeTransport, PipelinedCommandsAnswerInOrder) {
  Server server;
  LineClient client = server.client();
  // One write, many commands: strict per-connection FIFO responses.
  client.send_raw("gen a planted 40 0.0 9\nsubmit a hk\nwait 1\ndrain\n");
  auto line = client.recv_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_TRUE(line->starts_with("instance a"));
  line = client.recv_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_TRUE(line->starts_with("ticket 1"));
  line = client.recv_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_TRUE(line->starts_with("result ticket=1"));
  EXPECT_NE(line->find("cardinality=40"), std::string::npos);
  line = client.recv_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(*line, "drained");
}

}  // namespace
}  // namespace bpm::serve
