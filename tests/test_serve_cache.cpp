// serve::ResultCache (src/serve/result_cache.hpp): LRU eviction under a
// byte budget, recency refresh on hits, sharding correctness under
// concurrent access, and deterministic snapshot save/load round trips.

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/result_cache.hpp"
#include "util/rng.hpp"

namespace bpm::serve {
namespace {

JobOutcome outcome(graph::index_t cardinality, const std::string& detail = "",
                   bool ok = true, const std::string& error = "") {
  JobOutcome o;
  o.stats.cardinality = cardinality;
  o.stats.wall_ms = 1.25 * static_cast<double>(cardinality);
  o.stats.modeled_ms = 0.5;
  o.stats.device_launches = 7;
  o.stats.iterations = 3;
  o.stats.detail = detail;
  o.ok = ok;
  o.error = error;
  return o;
}

TEST(ResultCache, PutGetRoundTripsEveryField) {
  ResultCache cache;
  cache.put(42, "g-pr-shr:k=1.5", outcome(398, "loops=12 pushes=3456"));
  const auto hit = cache.get(42, "g-pr-shr:k=1.5");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->stats.cardinality, 398);
  EXPECT_DOUBLE_EQ(hit->stats.wall_ms, 1.25 * 398);
  EXPECT_EQ(hit->stats.device_launches, 7);
  EXPECT_EQ(hit->stats.iterations, 3);
  EXPECT_EQ(hit->stats.detail, "loops=12 pushes=3456");
  EXPECT_TRUE(hit->ok);

  // Distinct solver spec and distinct fingerprint are distinct entries.
  EXPECT_FALSE(cache.get(42, "hk").has_value());
  EXPECT_FALSE(cache.get(43, "g-pr-shr:k=1.5").has_value());

  const CacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_GT(s.bytes, 0u);
}

TEST(ResultCache, OverwriteRefreshesInsteadOfDuplicating) {
  ResultCache cache;
  cache.put(1, "hk", outcome(10));
  cache.put(1, "hk", outcome(20));
  const auto hit = cache.get(1, "hk");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->stats.cardinality, 20);
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().insertions, 1u);  // in-place update, not a new entry
}

TEST(ResultCache, EvictsLeastRecentlyUsedUnderTheByteBudget) {
  // Single shard so the LRU order is global; budget sized for ~2 entries
  // (each entry charges a fixed overhead plus its strings).
  ResultCache cache({.byte_budget = 300, .shards = 1});
  cache.put(1, "a", outcome(1));
  cache.put(2, "b", outcome(2));
  cache.put(3, "c", outcome(3));  // evicts fingerprint 1 (oldest)
  EXPECT_FALSE(cache.get(1, "a").has_value());
  EXPECT_TRUE(cache.get(2, "b").has_value());
  EXPECT_TRUE(cache.get(3, "c").has_value());
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_LE(s.bytes, 300u);
}

TEST(ResultCache, GetRefreshesRecencySoHotEntriesSurvive) {
  ResultCache cache({.byte_budget = 300, .shards = 1});
  cache.put(1, "a", outcome(1));
  cache.put(2, "b", outcome(2));
  ASSERT_TRUE(cache.get(1, "a").has_value());  // 1 is now the MRU
  cache.put(3, "c", outcome(3));               // so 2 is the victim
  EXPECT_TRUE(cache.get(1, "a").has_value());
  EXPECT_FALSE(cache.get(2, "b").has_value());
  EXPECT_TRUE(cache.get(3, "c").has_value());
}

TEST(ResultCache, OversizedEntryIsKeptAlone) {
  ResultCache cache({.byte_budget = 200, .shards = 1});
  cache.put(1, "a", outcome(1));
  cache.put(2, "big", outcome(2, std::string(10000, 'x')));
  EXPECT_FALSE(cache.get(1, "a").has_value());
  const auto hit = cache.get(2, "big");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->stats.detail.size(), 10000u);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ResultCache, ShardedConcurrentHitsStayCorrect) {
  // Hammer a small key space from many threads: every get must return
  // either nothing or the exact outcome put under that key — sharding or
  // locking bugs surface as torn/mismatched values (and under TSan, as
  // races).
  ResultCache cache({.byte_budget = std::size_t{8} << 20, .shards = 8});
  constexpr int kKeys = 64;
  constexpr int kOpsPerThread = 2000;
  const unsigned threads = 8;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const int key = (i * 31 + static_cast<int>(t) * 7) % kKeys;
        const auto fp = static_cast<std::uint64_t>(key);
        const std::string solver = "s" + std::to_string(key % 5);
        if (i % 3 == 0) {
          cache.put(fp, solver, outcome(key, "detail-" + std::to_string(key)));
        } else if (const auto hit = cache.get(fp, solver)) {
          if (hit->stats.cardinality != key ||
              hit->stats.detail != "detail-" + std::to_string(key))
            mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  const CacheStats s = cache.stats();
  EXPECT_GT(s.hits, 0u);
  // Every get is accounted exactly once: per thread, the i % 3 != 0 ops.
  const std::uint64_t gets_per_thread = kOpsPerThread - (kOpsPerThread + 2) / 3;
  EXPECT_EQ(s.hits + s.misses, threads * gets_per_thread);
}

TEST(ResultCache, SnapshotRoundTripIsDeterministic) {
  ResultCache cache({.byte_budget = std::size_t{1} << 20, .shards = 4});
  for (int i = 0; i < 20; ++i)
    cache.put(static_cast<std::uint64_t>(i * 977),
              "solver-" + std::to_string(i % 3),
              outcome(i, "detail with spaces " + std::to_string(i),
                      i % 4 != 0, i % 4 == 0 ? "some error text" : ""));
  (void)cache.get(0, "solver-0");  // perturb recency: survives the trip too

  std::ostringstream first;
  cache.save(first);

  ResultCache reloaded({.byte_budget = std::size_t{1} << 20, .shards = 4});
  std::istringstream in(first.str());
  EXPECT_EQ(reloaded.load(in), 20u);

  // Same contents...
  for (int i = 0; i < 20; ++i) {
    const auto hit = reloaded.get(static_cast<std::uint64_t>(i * 977),
                                  "solver-" + std::to_string(i % 3));
    ASSERT_TRUE(hit.has_value()) << i;
    EXPECT_EQ(hit->stats.cardinality, i);
    EXPECT_DOUBLE_EQ(hit->stats.wall_ms, 1.25 * i);
    EXPECT_EQ(hit->stats.detail, "detail with spaces " + std::to_string(i));
    EXPECT_EQ(hit->ok, i % 4 != 0);
    EXPECT_EQ(hit->error, i % 4 == 0 ? "some error text" : "");
  }
  EXPECT_EQ(reloaded.stats().entries, cache.stats().entries);
  EXPECT_EQ(reloaded.stats().bytes, cache.stats().bytes);

  // ...and save -> load -> save is byte-identical (recency order included;
  // the gets above refreshed entries, so save again from a fresh copy).
  ResultCache again({.byte_budget = std::size_t{1} << 20, .shards = 4});
  std::istringstream in2(first.str());
  EXPECT_EQ(again.load(in2), 20u);
  std::ostringstream second;
  again.save(second);
  EXPECT_EQ(first.str(), second.str());
}

TEST(ResultCache, SnapshotLoadEnforcesTheBudget) {
  ResultCache cache({.byte_budget = std::size_t{1} << 20, .shards = 1});
  for (int i = 0; i < 50; ++i)
    cache.put(static_cast<std::uint64_t>(i), "s", outcome(i));
  std::ostringstream snap;
  cache.save(snap);

  ResultCache tiny({.byte_budget = 400, .shards = 1});
  std::istringstream in(snap.str());
  EXPECT_EQ(tiny.load(in), 50u);  // all read, LRU-evicted down to budget
  EXPECT_LE(tiny.stats().bytes, 400u);
  EXPECT_LT(tiny.stats().entries, 50u);
  EXPECT_GT(tiny.stats().entries, 0u);
  // The survivors are the most recent records — the save order's tail.
  EXPECT_TRUE(tiny.get(49, "s").has_value());
}

TEST(ResultCache, MalformedSnapshotsAreRejected) {
  ResultCache cache;
  std::istringstream not_ours("some other file format");
  EXPECT_THROW((void)cache.load(not_ours), std::runtime_error);
  std::istringstream truncated("bpm-result-cache 1 3\n7 1 10 0.5 0 0 0 2 0 0\nhk\n");
  EXPECT_THROW((void)cache.load(truncated), std::runtime_error);
  std::istringstream bad_version("bpm-result-cache 99 0\n");
  EXPECT_THROW((void)cache.load(bad_version), std::runtime_error);
  EXPECT_EQ(cache.load_file("/no/such/file"), 0u);  // cold start, not an error
}

TEST(ResultCache, RandomizedSnapshotSaveLoadSaveIsByteIdentical) {
  // Property: for any cache state, save → load-into-empty-same-options →
  // save reproduces the first snapshot byte for byte (contents AND
  // per-shard LRU order).  Random shard counts, fingerprints that
  // deliberately collide, solver keys / detail / error strings with
  // whitespace and newlines (the snapshot framing is length-prefixed),
  // failed outcomes, overwrites, and recency-shuffling gets.
  Rng rng(4242);
  const std::string chars =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
      ":=,.-_ \n\t";
  const auto random_string = [&](std::size_t max_len) {
    std::string s;
    for (std::uint64_t c = 0, n = 1 + rng.below(max_len); c < n; ++c)
      s += chars[rng.below(chars.size())];
    return s;
  };
  for (int trial = 0; trial < 25; ++trial) {
    const CacheOptions options{
        .byte_budget = std::size_t{1} << 20,
        .shards = static_cast<unsigned>(1 + rng.below(8))};
    ResultCache cache(options);
    const std::uint64_t distinct_fingerprints = 1 + rng.below(12);
    for (std::uint64_t i = 0, n = 5 + rng.below(40); i < n; ++i) {
      JobOutcome o;
      o.stats.cardinality = static_cast<graph::index_t>(rng.below(100000));
      o.stats.wall_ms = static_cast<double>(rng.below(1 << 20)) / 1024.0;
      o.stats.modeled_ms = static_cast<double>(rng.below(1 << 20)) / 4096.0;
      o.stats.device_launches = static_cast<std::int64_t>(rng.below(5000));
      o.stats.iterations = static_cast<std::int64_t>(rng.below(500));
      o.stats.detail = rng.below(3) == 0 ? "" : random_string(40);
      o.ok = rng.below(5) != 0;
      o.error = o.ok ? "" : random_string(30);
      cache.put(rng.below(distinct_fingerprints), random_string(16), o);
    }
    // Shuffle recency so the LRU order differs from insertion order.
    for (int g = 0; g < 20; ++g)
      (void)cache.get(rng.below(distinct_fingerprints), random_string(16));

    std::stringstream first;
    cache.save(first);
    ResultCache reloaded(options);
    std::stringstream snapshot(first.str());
    const std::size_t read = reloaded.load(snapshot);
    EXPECT_EQ(read, cache.stats().entries);
    std::stringstream second;
    reloaded.save(second);
    EXPECT_EQ(first.str(), second.str()) << "trial " << trial;
  }
}

TEST(ResultCache, ClearDropsEntriesButKeepsCounters) {
  ResultCache cache;
  cache.put(1, "a", outcome(1));
  (void)cache.get(1, "a");
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_FALSE(cache.get(1, "a").has_value());
}

}  // namespace
}  // namespace bpm::serve
