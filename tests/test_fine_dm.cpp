// Tests for the fine Dulmage–Mendelsohn stage (block-triangular form):
// SCCs of the square block in a valid BTF order.

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "matching/dulmage_mendelsohn.hpp"
#include "matching/hopcroft_karp.hpp"
#include "util/rng.hpp"

namespace bpm::matching {
namespace {

using graph::BipartiteGraph;
using graph::Edge;
using graph::build_from_edges;
using graph::index_t;
namespace gen = graph::gen;

struct Decomposed {
  Matching m;
  DulmageMendelsohn dm;
  FineDecomposition fine;
};

Decomposed decompose(const BipartiteGraph& g) {
  Decomposed d;
  d.m = hopcroft_karp(g, Matching(g));
  d.dm = dulmage_mendelsohn(g, d.m);
  d.fine = fine_decomposition(g, d.m, d.dm);
  return d;
}

TEST(FineDm, DiagonalMatrixIsFullyReducible) {
  // Identity structure: every pair is its own 1x1 block.
  std::vector<Edge> edges;
  for (index_t i = 0; i < 6; ++i) edges.push_back({i, i});
  const Decomposed d = decompose(build_from_edges(6, 6, edges));
  EXPECT_EQ(d.fine.num_blocks, 6);
  EXPECT_FALSE(d.fine.is_irreducible());
}

TEST(FineDm, FullCycleIsIrreducible) {
  // Pair digraph is one big cycle: diagonal + superdiagonal entries.
  std::vector<Edge> edges;
  for (index_t i = 0; i < 6; ++i) {
    edges.push_back({i, i});
    edges.push_back({i, (i + 1) % 6});
  }
  const Decomposed d = decompose(build_from_edges(6, 6, edges));
  EXPECT_EQ(d.fine.num_blocks, 1);
  EXPECT_TRUE(d.fine.is_irreducible());
}

TEST(FineDm, LowerTriangularSplitsIntoSingletons) {
  // Entries (i, j) for j <= i: BTF of a triangular matrix is n 1x1
  // blocks.
  std::vector<Edge> edges;
  for (index_t i = 0; i < 5; ++i)
    for (index_t j = 0; j <= i; ++j) edges.push_back({i, j});
  const Decomposed d = decompose(build_from_edges(5, 5, edges));
  EXPECT_EQ(d.fine.num_blocks, 5);
}

TEST(FineDm, TwoCyclesGiveTwoBlocksInTriangularOrder) {
  // Blocks {0,1,2} (cycle) and {3,4} (cycle), with a one-way coupling
  // entry (0, 3): arcs go block A -> block B, so BTF must number B
  // before A (block id of row 0 > block id of row 3).
  std::vector<Edge> edges;
  for (index_t i = 0; i < 3; ++i) {
    edges.push_back({i, i});
    edges.push_back({i, (i + 1) % 3});
  }
  for (index_t i = 3; i < 5; ++i) {
    edges.push_back({i, i});
    edges.push_back({i, i == 4 ? 3 : 4});
  }
  edges.push_back({0, 3});  // coupling
  const Decomposed d = decompose(build_from_edges(5, 5, edges));
  EXPECT_EQ(d.fine.num_blocks, 2);
  EXPECT_GT(d.fine.block_of_row[0], d.fine.block_of_row[3]);
  EXPECT_EQ(d.fine.block_of_row[0], d.fine.block_of_row[1]);
  EXPECT_EQ(d.fine.block_of_row[3], d.fine.block_of_row[4]);
}

TEST(FineDm, BtfOrderPropertyOnRandomSquareMatrices) {
  // Valid block-triangular numbering: every square-block entry (u, v)
  // satisfies block[u] >= block[col_match[v]].
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const BipartiteGraph g = gen::planted_perfect(60, 1.2, seed);
    const Decomposed d = decompose(g);
    ASSERT_TRUE(d.dm.is_square_only());
    for (index_t u = 0; u < g.num_rows(); ++u) {
      for (index_t v : g.row_neighbors(u)) {
        const index_t w = d.m.col_match[static_cast<std::size_t>(v)];
        EXPECT_GE(d.fine.block_of_row[static_cast<std::size_t>(u)],
                  d.fine.block_of_row[static_cast<std::size_t>(w)])
            << "entry (" << u << "," << v << ") violates BTF, seed " << seed;
      }
    }
  }
}

TEST(FineDm, BlocksPartitionTheSquareRows) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const BipartiteGraph g = gen::chung_lu(120, 120, 3.0, 2.4, seed);
    const Decomposed d = decompose(g);
    index_t square_rows_seen = 0;
    for (index_t u = 0; u < g.num_rows(); ++u) {
      const index_t b = d.fine.block_of_row[static_cast<std::size_t>(u)];
      if (d.dm.row_block[static_cast<std::size_t>(u)] ==
          DulmageMendelsohn::Block::kSquare) {
        EXPECT_GE(b, 0);
        EXPECT_LT(b, d.fine.num_blocks);
        ++square_rows_seen;
      } else {
        EXPECT_EQ(b, -1);
      }
    }
    EXPECT_EQ(square_rows_seen, d.dm.square_rows);
  }
}

TEST(FineDm, BlockCountInvariantUnderVertexPermutation) {
  const BipartiteGraph g = gen::planted_perfect(50, 0.8, 9);
  const index_t base_blocks = decompose(g).fine.num_blocks;
  for (std::uint64_t seed = 1; seed <= 3; ++seed)
    EXPECT_EQ(decompose(graph::permute_vertices(g, seed)).fine.num_blocks,
              base_blocks);
}

TEST(FineDm, EmptySquareBlockYieldsZeroBlocks) {
  const Decomposed d = decompose(gen::star(4));  // purely horizontal
  EXPECT_EQ(d.fine.num_blocks, 0);
  EXPECT_TRUE(d.fine.is_irreducible());  // vacuously
}

}  // namespace
}  // namespace bpm::matching
