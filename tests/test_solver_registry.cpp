// Solver registry (core/solver.hpp): every registered solver resolves by
// name, reports coherent capabilities, honours its tuning knobs, and — the
// registry-level cross-algorithm agreement test — returns a valid maximum
// matching on a shared generator suite.  Any algorithm added to the
// registry is covered by this file with zero test changes.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/solver.hpp"
#include "graph/generators.hpp"
#include "matching/greedy.hpp"
#include "matching/verify.hpp"

namespace bpm {
namespace {

namespace gen = graph::gen;
using graph::BipartiteGraph;
using graph::index_t;

// The nine seed algorithms the registry must expose (plus whatever else
// future PRs register).
const std::vector<std::string> kSeedNames = {
    "g-pr-shr", "g-pr-first", "g-hkdw", "p-dbfs", "seq-pr",
    "hk",       "hkdw",       "pf",     "greedy",
};

std::vector<BipartiteGraph> generator_suite() {
  std::vector<BipartiteGraph> graphs;
  graphs.push_back(gen::random_uniform(500, 520, 2600, 7));
  graphs.push_back(gen::planted_perfect(400, 2.5, 11));
  graphs.push_back(gen::chung_lu(600, 600, 4.0, 2.3, 13));
  graphs.push_back(gen::trace_mesh(200, 6, 0.05, 17));
  graphs.push_back(gen::complete_bipartite(40, 25));
  graphs.push_back(gen::empty_graph(30, 30));
  return graphs;
}

TEST(SolverRegistry, EverySeedAlgorithmResolvesByName) {
  for (const std::string& name : kSeedNames) {
    EXPECT_TRUE(SolverRegistry::instance().contains(name)) << name;
    const auto solver = SolverRegistry::instance().create(name);
    ASSERT_NE(solver, nullptr) << name;
    EXPECT_EQ(solver->name(), name);
  }
}

TEST(SolverRegistry, AliasesResolveToCanonicalSolvers) {
  EXPECT_EQ(SolverRegistry::instance().create("g-pr")->name(), "g-pr-shr");
  EXPECT_EQ(SolverRegistry::instance().create("pr")->name(), "seq-pr");
  // Aliases are reachable but not listed.
  const auto names = SolverRegistry::instance().names();
  for (const std::string& alias : {"g-pr", "pr"}) {
    EXPECT_TRUE(SolverRegistry::instance().contains(alias));
    EXPECT_EQ(std::count(names.begin(), names.end(), alias), 0) << alias;
  }
}

TEST(SolverRegistry, UnknownNameThrowsListingChoices) {
  try {
    (void)SolverRegistry::instance().create("no-such-solver");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-solver"), std::string::npos);
    EXPECT_NE(what.find("g-pr-shr"), std::string::npos);
  }
}

TEST(SolverRegistry, DuplicateRegistrationThrows) {
  EXPECT_THROW(SolverRegistry::instance().add(
                   "g-pr-shr", [] { return std::unique_ptr<Solver>(); }),
               std::invalid_argument);
  EXPECT_THROW(SolverRegistry::instance().add_alias("pr", "seq-pr"),
               std::invalid_argument);
  EXPECT_THROW(SolverRegistry::instance().add_alias("fresh", "no-such"),
               std::invalid_argument);
}

TEST(SolverRegistry, CapabilitiesMatchTheAlgorithmFamilies) {
  const auto caps = [](const std::string& name) {
    return SolverRegistry::instance().create(name)->caps();
  };
  for (const std::string& name :
       {"g-pr-shr", "g-pr-noshr", "g-pr-first", "g-hk", "g-hkdw"}) {
    EXPECT_TRUE(caps(name).needs_device) << name;
    EXPECT_FALSE(caps(name).deterministic) << name;
    EXPECT_TRUE(caps(name).exact) << name;
  }
  EXPECT_TRUE(caps("p-dbfs").multicore);
  EXPECT_FALSE(caps("p-dbfs").needs_device);
  for (const std::string& name : {"seq-pr", "hk", "hkdw", "pf"}) {
    EXPECT_FALSE(caps(name).needs_device) << name;
    EXPECT_TRUE(caps(name).deterministic) << name;
    EXPECT_TRUE(caps(name).exact) << name;
  }
  EXPECT_FALSE(caps("greedy").exact);
  EXPECT_FALSE(caps("karp-sipser").exact);
}

TEST(SolverRegistry, DeviceSolverWithoutDeviceThrows) {
  const BipartiteGraph g = gen::complete_bipartite(4, 4);
  const SolveContext no_device;
  EXPECT_THROW((void)solve("g-pr-shr", no_device, g, matching::Matching(g)),
               std::invalid_argument);
}

TEST(SolverRegistry, SetOptionAcceptsKnownRejectsUnknownKeys) {
  const auto gpr = SolverRegistry::instance().create("g-pr-shr");
  EXPECT_TRUE(gpr->set_option("k", "1.5"));
  EXPECT_TRUE(gpr->set_option("strategy", "fix"));
  EXPECT_TRUE(gpr->set_option("initial-gr", "0"));
  EXPECT_FALSE(gpr->set_option("no-such-knob", "1"));
  EXPECT_THROW((void)gpr->set_option("k", "banana"), std::invalid_argument);
  EXPECT_THROW((void)gpr->set_option("strategy", "sometimes"),
               std::invalid_argument);

  const auto hk = SolverRegistry::instance().create("hk");
  EXPECT_FALSE(hk->set_option("k", "1.5"));  // HK has no tuning knobs
}

// The registry-level agreement sweep: every registered solver, on every
// suite graph, from the shared greedy init — exact solvers must produce a
// valid maximum matching (independently certified), heuristics a valid
// matching of at most maximum cardinality.
TEST(SolverRegistry, EverySolverAgreesOnTheGeneratorSuite) {
  device::Device dev({.mode = device::ExecMode::kConcurrent, .num_threads = 4});
  const SolveContext ctx{.device = &dev, .threads = 4};

  for (const BipartiteGraph& g : generator_suite()) {
    const matching::Matching init = matching::cheap_matching(g);
    const index_t maximum = matching::reference_maximum_cardinality(g);
    for (const std::string& name : SolverRegistry::instance().names()) {
      const auto solver = SolverRegistry::instance().create(name);
      const SolveResult result = solver->run(ctx, g, init);
      EXPECT_TRUE(result.matching.is_valid(g))
          << name << ": " << result.matching.first_violation(g);
      EXPECT_EQ(result.stats.cardinality, result.matching.cardinality())
          << name;
      if (solver->caps().exact) {
        EXPECT_EQ(result.stats.cardinality, maximum) << name;
        EXPECT_TRUE(matching::is_maximum(g, result.matching)) << name;
      } else {
        EXPECT_LE(result.stats.cardinality, maximum) << name;
      }
      EXPECT_GE(result.stats.wall_ms, 0.0) << name;
      if (name == "auto") {
        // Delegates per instance: device stats are whatever the resolved
        // concrete solver reported (a sequential pick has zero launches);
        // the choice itself is recorded in the detail string.
        EXPECT_EQ(result.stats.detail.rfind("auto -> ", 0), 0u)
            << result.stats.detail;
      } else if (solver->caps().needs_device) {
        EXPECT_GT(result.stats.modeled_ms, 0.0) << name;
        EXPECT_GT(result.stats.device_launches, 0) << name;
      } else {
        EXPECT_EQ(result.stats.modeled_ms, 0.0) << name;
      }
    }
  }
}

TEST(SolverRegistry, SolveConvenienceMatchesExplicitDispatch) {
  const BipartiteGraph g = gen::planted_perfect(128, 2.0, 3);
  device::Device dev({.mode = device::ExecMode::kSequential});
  const SolveContext ctx{.device = &dev};
  const SolveResult r = solve("hkdw", ctx, g, matching::cheap_matching(g));
  EXPECT_EQ(r.stats.cardinality, 128);
}

}  // namespace
}  // namespace bpm
