// Tests for the stream-overlapped global relabeling (the paper's Section V
// future work, implemented as GprOptions::concurrent_global_relabel and
// gpu::AsyncGlobalRelabel).

#include <gtest/gtest.h>

#include "core/g_gr.hpp"
#include "core/g_pr.hpp"
#include "graph/generators.hpp"
#include "matching/greedy.hpp"
#include "matching/verify.hpp"

namespace bpm::gpu {
namespace {

using device::Device;
using device::ExecMode;
using graph::BipartiteGraph;
using graph::index_t;
namespace gen = graph::gen;

// ------------------------------------------------- AsyncGlobalRelabel ----

TEST(AsyncGlobalRelabel, StepwiseBfsMatchesSynchronousGGr) {
  const BipartiteGraph g = gen::random_uniform(60, 60, 200, 3);
  const matching::Matching m = matching::cheap_matching(g);
  Device dev({.mode = ExecMode::kSequential});

  DeviceState sync_st(g.num_rows(), g.num_cols());
  sync_st.mu_row.assign_from(m.row_match);
  sync_st.mu_col.assign_from(m.col_match);
  const GrResult sync = g_gr(dev, g, sync_st);

  DeviceState async_st(g.num_rows(), g.num_cols());
  async_st.mu_row.assign_from(m.row_match);
  async_st.mu_col.assign_from(m.col_match);
  AsyncGlobalRelabel async(g.num_rows(), g.num_cols());
  async.start(dev, g, async_st);
  EXPECT_TRUE(async.running());
  int steps = 0;
  while (!async.step(dev, g)) ++steps;
  EXPECT_FALSE(async.running());
  async.apply(dev, g, async_st);

  // When nothing pushes in between, the shadow relabel must equal the
  // synchronous one exactly.
  EXPECT_EQ(async_st.psi_row.to_host(), sync_st.psi_row.to_host());
  EXPECT_EQ(async_st.psi_col.to_host(), sync_st.psi_col.to_host());
  EXPECT_EQ(async.max_level(), sync.max_level);
  EXPECT_EQ(steps + 1, sync.level_kernels);
}

TEST(AsyncGlobalRelabel, SnapshotIsolatesConcurrentMatchingChanges) {
  // Mutating µ after start() must not affect the in-flight BFS.
  const BipartiteGraph g = gen::chain(6);
  DeviceState st(g.num_rows(), g.num_cols());
  Device dev({.mode = ExecMode::kSequential});
  AsyncGlobalRelabel async(g.num_rows(), g.num_cols());
  async.start(dev, g, st);
  // Vandalise the live matching mid-flight (simulates racing pushes).
  st.mu_row.fill(0);
  st.mu_col.fill(0);
  while (!async.step(dev, g)) {
  }
  async.apply(dev, g, st);
  // With the (empty) snapshot matching, every row is a source: ψ(u) = 0,
  // ψ(v) = 1 — regardless of the vandalism.
  for (index_t u = 0; u < g.num_rows(); ++u)
    EXPECT_EQ(st.psi_row.load(static_cast<std::size_t>(u)), 0);
  for (index_t v = 0; v < g.num_cols(); ++v)
    EXPECT_EQ(st.psi_col.load(static_cast<std::size_t>(v)), 1);
}

// ----------------------------------------------------- G-PR integration ----

struct AsyncConfig {
  GprVariant variant;
  ExecMode mode;
};

class AsyncGprSweep : public ::testing::TestWithParam<AsyncConfig> {
 protected:
  void check(const BipartiteGraph& g) {
    const index_t want = matching::reference_maximum_cardinality(g);
    Device dev({.mode = GetParam().mode, .num_threads = 4});
    GprOptions opt;
    opt.variant = GetParam().variant;
    opt.concurrent_global_relabel = true;
    opt.shrink_threshold = 8;
    const GprResult r = g_pr(dev, g, matching::cheap_matching(g), opt);
    ASSERT_TRUE(r.matching.is_valid(g)) << r.matching.first_violation(g);
    EXPECT_EQ(r.matching.cardinality(), want);
    EXPECT_TRUE(matching::is_maximum(g, r.matching));
  }
};

TEST_P(AsyncGprSweep, RandomSparse) {
  for (std::uint64_t seed = 0; seed < 6; ++seed)
    check(gen::random_uniform(70, 70, 220, seed));
}

TEST_P(AsyncGprSweep, PowerLaw) { check(gen::chung_lu(250, 250, 3.0, 2.3, 5)); }

TEST_P(AsyncGprSweep, Chains) {
  check(gen::chain(64));
  check(gen::chain(150));
}

TEST_P(AsyncGprSweep, TraceStripDeepBfs) {
  check(gen::trace_mesh(90, 3, 0.05, 4));
}

TEST_P(AsyncGprSweep, Kron) { check(gen::rmat(7, 5.0, 11)); }

INSTANTIATE_TEST_SUITE_P(
    Configs, AsyncGprSweep,
    ::testing::Values(AsyncConfig{GprVariant::kFirst, ExecMode::kSequential},
                      AsyncConfig{GprVariant::kFirst, ExecMode::kConcurrent},
                      AsyncConfig{GprVariant::kShrink, ExecMode::kSequential},
                      AsyncConfig{GprVariant::kShrink, ExecMode::kConcurrent}),
    [](const auto& param_info) {
      std::string name =
          param_info.param.variant == GprVariant::kFirst ? "First" : "Shr";
      name += param_info.param.mode == ExecMode::kSequential ? "_Seq" : "_Conc";
      return name;
    });

TEST(AsyncGpr, CountsConcurrentRelabels) {
  // An instance that needs several relabels: deep trace strip, empty init.
  const BipartiteGraph g = gen::trace_mesh(200, 3, 0.02, 9);
  Device dev({.mode = ExecMode::kSequential});
  GprOptions opt;
  opt.concurrent_global_relabel = true;
  opt.k = 0.3;
  const GprResult r = g_pr(dev, g, matching::Matching(g), opt);
  EXPECT_EQ(r.matching.cardinality(),
            matching::reference_maximum_cardinality(g));
  // The initial relabel is synchronous; later relabel points start
  // overlapped attempts first.
  EXPECT_GE(r.stats.global_relabels, 1);
  EXPECT_GT(r.stats.concurrent_relabels, 0);
  // Every overlapped start either applied or was discarded as dirty.
  EXPECT_LE(r.stats.async_discarded, r.stats.concurrent_relabels);
  // Applied relabels = initial sync + applied async + dirty-fallback syncs.
  const std::int64_t applied_async =
      r.stats.concurrent_relabels - r.stats.async_discarded;
  EXPECT_LE(applied_async, r.stats.global_relabels - 1);
}

TEST(AsyncGpr, SyncModeReportsNoConcurrentRelabels) {
  const BipartiteGraph g = gen::random_uniform(100, 100, 300, 2);
  Device dev({.mode = ExecMode::kSequential});
  const GprResult r = g_pr(dev, g, matching::Matching(g));
  EXPECT_EQ(r.stats.concurrent_relabels, 0);
}

}  // namespace
}  // namespace bpm::gpu
