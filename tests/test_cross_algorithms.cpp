// Cross-algorithm agreement: every matcher in the repository — sequential,
// multicore, and the three GPU G-PR variants plus G-HK(DW) — must report
// the same maximum cardinality on the same instance, independently
// verified by the Berge certificate.  This is the repository's strongest
// integration test: a bug in any one algorithm (or in a generator, or in
// the verifier) breaks agreement somewhere in the sweep.

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "core/g_hk.hpp"
#include "core/g_pr.hpp"
#include "graph/generators.hpp"
#include "graph/instances.hpp"
#include "matching/greedy.hpp"
#include "matching/hkdw.hpp"
#include "matching/hopcroft_karp.hpp"
#include "matching/pothen_fan.hpp"
#include "matching/seq_pr.hpp"
#include "matching/verify.hpp"
#include "multicore/pdbfs.hpp"

namespace bpm {
namespace {

using device::Device;
using device::ExecMode;
using graph::BipartiteGraph;
using graph::index_t;
namespace gen = graph::gen;

struct NamedMatcher {
  std::string name;
  std::function<matching::Matching(const BipartiteGraph&,
                                   const matching::Matching&)>
      solve;
};

std::vector<NamedMatcher> all_matchers() {
  std::vector<NamedMatcher> out;
  out.push_back({"seq_pr", [](const auto& g, const auto& init) {
                   return matching::seq_push_relabel(g, init);
                 }});
  out.push_back({"hopcroft_karp", [](const auto& g, const auto& init) {
                   return matching::hopcroft_karp(g, init);
                 }});
  out.push_back({"pothen_fan", [](const auto& g, const auto& init) {
                   return matching::pothen_fan(g, init);
                 }});
  out.push_back({"hkdw", [](const auto& g, const auto& init) {
                   return matching::hkdw(g, init);
                 }});
  out.push_back({"p_dbfs", [](const auto& g, const auto& init) {
                   return mc::p_dbfs(g, init, {.num_threads = 4}).matching;
                 }});
  for (const auto variant :
       {gpu::GprVariant::kFirst, gpu::GprVariant::kNoShrink,
        gpu::GprVariant::kShrink}) {
    out.push_back({"g_pr_" + to_string(variant),
                   [variant](const auto& g, const auto& init) {
                     Device dev({.mode = ExecMode::kConcurrent,
                                 .num_threads = 4});
                     gpu::GprOptions opt;
                     opt.variant = variant;
                     opt.shrink_threshold = 8;
                     return gpu::g_pr(dev, g, init, opt).matching;
                   }});
  }
  out.push_back({"g_pr_wb", [](const auto& g, const auto& init) {
                   // The workload-balanced frontier driver (GprOptions::
                   // balance) must agree with every vertex-parallel path.
                   Device dev({.mode = ExecMode::kConcurrent,
                               .num_threads = 4});
                   gpu::GprOptions opt;
                   opt.balance = gpu::BalanceMode::kOn;
                   return gpu::g_pr(dev, g, init, opt).matching;
                 }});
  out.push_back({"g_hk", [](const auto& g, const auto& init) {
                   Device dev({.mode = ExecMode::kConcurrent, .num_threads = 4});
                   return gpu::g_hk(dev, g, init, {.duff_wiberg = false})
                       .matching;
                 }});
  out.push_back({"g_hkdw", [](const auto& g, const auto& init) {
                   Device dev({.mode = ExecMode::kConcurrent, .num_threads = 4});
                   return gpu::g_hk(dev, g, init, {.duff_wiberg = true})
                       .matching;
                 }});
  return out;
}

void expect_all_agree(const BipartiteGraph& g, const std::string& label) {
  const index_t want = matching::reference_maximum_cardinality(g);
  const matching::Matching init = matching::cheap_matching(g);
  for (const auto& matcher : all_matchers()) {
    const matching::Matching m = matcher.solve(g, init);
    ASSERT_TRUE(m.is_valid(g))
        << label << " / " << matcher.name << ": " << m.first_violation(g);
    EXPECT_EQ(m.cardinality(), want) << label << " / " << matcher.name;
    EXPECT_TRUE(matching::is_maximum(g, m)) << label << " / " << matcher.name;
  }
}

// ------------------------------------------------- generator-driven sweep ----

struct SweepCase {
  std::string name;
  std::function<BipartiteGraph(std::uint64_t seed)> make;
};

class CrossSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(CrossSweep, AllAlgorithmsAgreeAcrossSeeds) {
  for (std::uint64_t seed = 0; seed < 3; ++seed)
    expect_all_agree(GetParam().make(seed),
                     GetParam().name + "#" + std::to_string(seed));
}

INSTANTIATE_TEST_SUITE_P(
    Generators, CrossSweep,
    ::testing::Values(
        SweepCase{"random_sq",
                  [](std::uint64_t s) {
                    return gen::random_uniform(120, 120, 420, s);
                  }},
        SweepCase{"random_wide",
                  [](std::uint64_t s) {
                    return gen::random_uniform(60, 180, 400, s);
                  }},
        SweepCase{"random_tall",
                  [](std::uint64_t s) {
                    return gen::random_uniform(180, 60, 400, s);
                  }},
        SweepCase{"chung_lu",
                  [](std::uint64_t s) {
                    return gen::chung_lu(200, 200, 3.5, 2.4, s);
                  }},
        SweepCase{"rmat",
                  [](std::uint64_t s) { return gen::rmat(7, 5.0, s); }},
        SweepCase{"road",
                  [](std::uint64_t s) {
                    return gen::road_network(12, 12, 0.85, s);
                  }},
        SweepCase{"delaunay",
                  [](std::uint64_t s) { return gen::delaunay_mesh(11, 11, s); }},
        SweepCase{"trace",
                  [](std::uint64_t s) {
                    return gen::trace_mesh(70, 3, 0.06, s);
                  }},
        SweepCase{"copaper",
                  [](std::uint64_t s) { return gen::copaper(150, 30, 6.0, s); }},
        SweepCase{"skewed_hubs",
                  [](std::uint64_t s) {
                    // Deficient (rows < cols) so hubs stay contended.
                    return gen::skewed_hubs(170, 200, 4, 0.3, 2.5, s);
                  }},
        SweepCase{"planted",
                  [](std::uint64_t s) {
                    return gen::planted_perfect(80, 1.0, s);
                  }}),
    [](const auto& param_info) { return param_info.param.name; });

// ------------------------------------------------ miniature paper suite ----

TEST(CrossInstances, MiniaturePaperInstancesAgree) {
  // Every 4th Table I instance at ~1k-vertex scale: the full algorithm
  // portfolio must agree on all graph classes of the evaluation.
  for (const auto& inst : graph::select_instances(4)) {
    const BipartiteGraph g = inst.build(0.0008, 3);
    expect_all_agree(g, inst.name);
  }
}

}  // namespace
}  // namespace bpm
