#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "core/shard.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "matching/greedy.hpp"
#include "matching/verify.hpp"

namespace bpm::gpu {
namespace {

using device::Backend;
using device::Engine;
using device::EngineDescriptor;
using device::ExecMode;
using device::HostParallelEngine;
using graph::BipartiteGraph;
using graph::index_t;
namespace gen = graph::gen;

using Engines = std::vector<std::shared_ptr<Engine>>;

Engines sim_engines(int count, unsigned threads = 2) {
  Engines engines;
  for (int i = 0; i < count; ++i)
    engines.push_back(std::make_shared<Engine>(EngineDescriptor{
        .backend = Backend::kSim,
        .mode = ExecMode::kConcurrent,
        .threads = threads}));
  return engines;
}

Engines host_engines(int count, unsigned threads = 2,
                     std::int64_t host_grain = 16384) {
  Engines engines;
  for (int i = 0; i < count; ++i)
    engines.push_back(std::make_shared<HostParallelEngine>(EngineDescriptor{
        .mode = ExecMode::kConcurrent,
        .threads = threads,
        .host_grain = host_grain}));
  return engines;
}

// --- ShardPlan ------------------------------------------------------------

TEST(ShardPlan, CoversEveryColumnContiguously) {
  const BipartiteGraph g = gen::random_uniform(60, 90, 400, 1);
  for (const int k : {1, 2, 3, 7, 16}) {
    const ShardPlan plan = shard_columns(g, k);
    ASSERT_EQ(plan.shards(), k);
    EXPECT_EQ(plan.col_begin.front(), 0);
    EXPECT_EQ(plan.col_begin.back(), g.num_cols());
    EXPECT_EQ(plan.edge_begin.front(), 0);
    EXPECT_EQ(plan.edge_begin.back(), g.num_edges());
    for (int s = 0; s < k; ++s) {
      EXPECT_LE(plan.col_begin[static_cast<std::size_t>(s)],
                plan.col_begin[static_cast<std::size_t>(s) + 1]);
      for (index_t v = plan.col_begin[static_cast<std::size_t>(s)];
           v < plan.col_begin[static_cast<std::size_t>(s) + 1]; ++v)
        EXPECT_EQ(plan.owner(v), s);
    }
  }
}

TEST(ShardPlan, EdgeBalanceWithinOneMaxDegree) {
  const BipartiteGraph g = gen::skewed_hubs(200, 300, 4, 0.4, 2.0, 3);
  std::int64_t max_degree = 0;
  for (index_t v = 0; v < g.num_cols(); ++v)
    max_degree = std::max<std::int64_t>(max_degree, g.col_degree(v));
  const int k = 5;
  const ShardPlan plan = shard_columns(g, k);
  const std::int64_t ideal = g.num_edges() / k;
  for (int s = 0; s < k; ++s)
    EXPECT_LE(plan.edges(s), ideal + max_degree + 1) << "shard " << s;
}

TEST(ShardPlan, FirstShardNonEmptyAndClampedToColumns) {
  // More shards than columns: clamped, and the leading shard still owns
  // work (the balanced_partition ceil-target guarantee).
  const BipartiteGraph g =
      graph::build_from_edges(2, 2, std::vector<graph::Edge>{{0, 0}, {1, 1}});
  const ShardPlan plan = shard_columns(g, 64);
  EXPECT_EQ(plan.shards(), 2);
  EXPECT_GT(plan.edges(0), 0);
  EXPECT_THROW(shard_columns(g, 0), std::invalid_argument);
}

TEST(ShardPlan, ShardBytesCountColumnSideOnly) {
  const BipartiteGraph g = gen::random_uniform(50, 80, 300, 9);
  const ShardPlan plan = shard_columns(g, 4);
  std::size_t total = 0;
  for (int s = 0; s < plan.shards(); ++s) total += plan.shard_bytes(s);
  // Adjacency appears exactly once across shards; pointer slices add one
  // boundary entry each.
  const std::size_t floor_bytes =
      static_cast<std::size_t>(g.num_edges()) * sizeof(index_t);
  EXPECT_GT(total, floor_bytes);
  EXPECT_LT(total, floor_bytes + static_cast<std::size_t>(g.num_cols() + 8) *
                                     32);
}

// --- resolve_shard_count --------------------------------------------------

TEST(ResolveShardCount, RequestedVerbatimAndClamped) {
  const BipartiteGraph g = gen::random_uniform(30, 40, 150, 2);
  const Engines engines = sim_engines(2);
  EXPECT_EQ(resolve_shard_count(g, 3, engines), 3);
  EXPECT_EQ(resolve_shard_count(g, 1, engines), 1);
  EXPECT_EQ(resolve_shard_count(g, 1000, engines), g.num_cols());
}

TEST(ResolveShardCount, AutoFollowsEngineCount) {
  const BipartiteGraph g = gen::random_uniform(30, 40, 150, 2);
  EXPECT_EQ(resolve_shard_count(g, 0, sim_engines(1)), 1);
  EXPECT_EQ(resolve_shard_count(g, 0, sim_engines(4)), 4);
}

TEST(ResolveShardCount, AutoGrowsUntilShardsFitEngineBudget) {
  const BipartiteGraph g = gen::random_uniform(200, 200, 2000, 5);
  // A budget of roughly a quarter of the instance's column-side bytes
  // forces auto-K past the engine count.
  const ShardPlan one = shard_columns(g, 1);
  Engines engines = sim_engines(2);
  EngineDescriptor tight{.backend = Backend::kSim,
                         .mode = ExecMode::kConcurrent,
                         .threads = 1};
  tight.memory_budget = one.shard_bytes(0) / 4;
  engines.push_back(std::make_shared<Engine>(tight));
  const int k = resolve_shard_count(g, 0, engines);
  EXPECT_GT(k, 3);
  const ShardPlan plan = shard_columns(g, k);
  for (int s = 0; s < plan.shards(); ++s)
    EXPECT_LE(plan.shard_bytes(s), tight.memory_budget) << "shard " << s;
}

// --- conformance ----------------------------------------------------------

/// Solves with the sharded driver from empty and greedy starts and checks
/// validity, the reference cardinality, and the Berge certificate.
void check_sharded(const Engines& engines, const BipartiteGraph& g,
                   const GprOptions& opt, const std::string& label) {
  const index_t want = matching::reference_maximum_cardinality(g);
  for (const bool greedy_start : {false, true}) {
    const matching::Matching init =
        greedy_start ? matching::cheap_matching(g) : matching::Matching(g);
    const GprResult r = g_pr_sharded(engines, g, init, opt);
    ASSERT_TRUE(r.matching.is_valid(g))
        << label << ": " << r.matching.first_violation(g);
    EXPECT_EQ(r.matching.cardinality(), want) << label;
    EXPECT_TRUE(matching::is_maximum(g, r.matching)) << label;
    if (opt.shards > 1 && g.num_cols() > 1) {
      EXPECT_EQ(r.stats.shards, std::min<int>(opt.shards, g.num_cols()))
          << label;
      // A start that is not already maximum must take at least one round.
      if (init.cardinality() < want)
        EXPECT_GT(r.stats.shard_rounds, 0) << label;
    }
  }
}

std::vector<BipartiteGraph> conformance_suite() {
  std::vector<BipartiteGraph> suite;
  suite.push_back(gen::empty_graph(4, 6));
  suite.push_back(
      graph::build_from_edges(1, 1, std::vector<graph::Edge>{{0, 0}}));
  suite.push_back(gen::star(9));
  suite.push_back(gen::chain(64));
  suite.push_back(gen::complete_bipartite(9, 5));
  for (std::uint64_t seed = 0; seed < 4; ++seed)
    suite.push_back(gen::random_uniform(70, 70, 240, seed));
  suite.push_back(gen::random_uniform(40, 110, 300, 11));
  suite.push_back(gen::random_uniform(110, 40, 300, 12));
  suite.push_back(gen::chung_lu(200, 200, 3.0, 2.3, 5));
  suite.push_back(gen::skewed_hubs(120, 160, 3, 0.5, 2.0, 7));
  return suite;
}

using ShardConfig = std::tuple<Backend, int, ShardDrivers>;

std::string shard_config_name(
    const ::testing::TestParamInfo<ShardConfig>& info) {
  const auto [backend, shards, drivers] = info.param;
  std::string name = backend == Backend::kSim ? "Sim" : "Host";
  name += "_K" + std::to_string(shards);
  name += drivers == ShardDrivers::kSequential ? "_Seq" : "_Par";
  return name;
}

class ShardedConfigs : public ::testing::TestWithParam<ShardConfig> {
 protected:
  GprOptions options() const {
    GprOptions opt;
    opt.shards = std::get<1>(GetParam());
    opt.shard_drivers = std::get<2>(GetParam());
    return opt;
  }
  Engines engines() const {
    // Two engines so shards route round-robin across more than one arena;
    // a tiny host grain forces real pool fan-out on test-sized grids.
    return std::get<0>(GetParam()) == Backend::kSim
               ? sim_engines(2)
               : host_engines(2, 2, 64);
  }
};

TEST_P(ShardedConfigs, MatchesOracleAcrossSuite) {
  const GprOptions opt = options();
  const Engines e = engines();
  int i = 0;
  for (const BipartiteGraph& g : conformance_suite())
    check_sharded(e, g, opt, "instance " + std::to_string(i++));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ShardedConfigs,
    ::testing::Combine(::testing::Values(Backend::kSim, Backend::kHost),
                       ::testing::Values(1, 2, 3, 5),
                       ::testing::Values(ShardDrivers::kSequential,
                                         ShardDrivers::kParallel)),
    shard_config_name);

TEST(Sharded, AutoShardsUsesEveryEngine) {
  const BipartiteGraph g = gen::random_uniform(120, 150, 700, 21);
  GprOptions opt;
  opt.shards = 0;  // auto
  const Engines e = sim_engines(3);
  const GprResult r =
      g_pr_sharded(e, g, matching::Matching(g), opt);
  EXPECT_EQ(r.stats.shards, 3);
  EXPECT_TRUE(r.matching.is_valid(g));
  EXPECT_EQ(r.matching.cardinality(),
            matching::reference_maximum_cardinality(g));
}

TEST(Sharded, SingleShardDelegatesToUnsharded) {
  const BipartiteGraph g = gen::random_uniform(50, 50, 200, 4);
  GprOptions opt;
  opt.shards = 1;
  const GprResult r =
      g_pr_sharded(sim_engines(1), g, matching::Matching(g), opt);
  EXPECT_EQ(r.stats.shards, 1);
  EXPECT_EQ(r.stats.shard_rounds, 0);
  EXPECT_EQ(r.matching.cardinality(),
            matching::reference_maximum_cardinality(g));
}

TEST(Sharded, RequiresAnEngine) {
  const BipartiteGraph g = gen::chain(4);
  GprOptions opt;
  opt.shards = 2;
  EXPECT_THROW(g_pr_sharded({}, g, matching::Matching(g), opt),
               std::invalid_argument);
}

TEST(Sharded, SplitGrainCombinesWithSharding) {
  // Hub columns exceed the forced tiny grain, so the intra-item
  // min-combine fragments them inside each shard's push.
  const BipartiteGraph g = gen::skewed_hubs(160, 200, 3, 0.6, 2.0, 17);
  GprOptions opt;
  opt.shards = 3;
  opt.split_grain = 8;
  const Engines e = sim_engines(2);
  const GprResult r = g_pr_sharded(e, g, matching::Matching(g), opt);
  EXPECT_TRUE(r.matching.is_valid(g));
  EXPECT_EQ(r.matching.cardinality(),
            matching::reference_maximum_cardinality(g));
  EXPECT_GT(r.stats.split_items, 0);
  EXPECT_GT(r.stats.split_fragments, r.stats.split_items);
}

/// The TSan target: parallel shard drivers on the host backend with a
/// tiny dispatch grain, so reconciliation, the store_min claims, and the
/// cross-shard mailboxes all run under real concurrency.
TEST(ShardedStress, ParallelDriversUnderContention) {
  GprOptions opt;
  opt.shards = 4;
  opt.shard_drivers = ShardDrivers::kParallel;
  const Engines e = host_engines(2, 2, 32);
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    // Deficient skewed instances keep many columns contending for the
    // same rows deep into the run — the conflict-heavy regime.
    const BipartiteGraph g = gen::random_uniform(60, 100, 500, seed);
    check_sharded(e, g, opt, "stress seed " + std::to_string(seed));
  }
  const BipartiteGraph hubs = gen::skewed_hubs(80, 140, 4, 0.6, 3.0, 2);
  check_sharded(e, hubs, opt, "stress hubs");
}

}  // namespace
}  // namespace bpm::gpu
