// Observability layer: metrics registry (striped counters, gauges,
// fixed-bucket histograms, deterministic snapshots) and the tracer
// (bounded per-thread rings, chrome://tracing JSON, span nesting).
//
// The concurrency tests double as the TSan harness for the hot-path
// claims in obs/metrics.hpp and obs/trace.hpp: counters and histograms
// are hammered from many threads and must come out exact, and spans are
// recorded from a pool without a shared buffer.  The conformance tests
// at the bottom run real solves with tracing on and off and require
// identical results — instrumentation must observe, never perturb.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/g_pr.hpp"
#include "core/shard.hpp"
#include "graph/generators.hpp"
#include "matching/greedy.hpp"
#include "matching/verify.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace bpm::obs {
namespace {

using device::Backend;
using device::Device;
using device::Engine;
using device::EngineDescriptor;
using device::ExecMode;
using graph::BipartiteGraph;
namespace gen = graph::gen;

// ------------------------------------------------------------- metrics ----

TEST(Counter, AddIncValue) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Counter, ConcurrentHammerIsExact) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
      c.add(3);
    });
  for (auto& th : pool) th.join();
  EXPECT_EQ(c.value(), kThreads * (kPerThread + 3));
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.set(0.0);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Histogram, BucketsCountSumMean) {
  Histogram h({1.0, 2.0, 4.0});
  for (const double v : {0.5, 1.0, 1.5, 3.0, 100.0}) h.observe(v);
  const Histogram::Snapshot s = h.snapshot();
  ASSERT_EQ(s.bounds.size(), 3u);
  ASSERT_EQ(s.counts.size(), 4u);  // +1 overflow bucket
  // Bounds are inclusive upper bounds: 1.0 lands in the first bucket.
  EXPECT_EQ(s.counts[0], 2u);
  EXPECT_EQ(s.counts[1], 1u);
  EXPECT_EQ(s.counts[2], 1u);
  EXPECT_EQ(s.counts[3], 1u);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.sum, 106.0);
  EXPECT_DOUBLE_EQ(s.mean(), 106.0 / 5.0);
}

TEST(Histogram, PercentileEmptyAndOverflowBucket) {
  Histogram h({1.0, 2.0, 4.0});
  EXPECT_EQ(h.snapshot().percentile(50), 0.0);
  h.observe(100.0);  // overflow bucket
  const Histogram::Snapshot s = h.snapshot();
  // The histogram cannot see past its last boundary: the overflow bucket
  // reports its lower bound rather than inventing a value.
  EXPECT_DOUBLE_EQ(s.percentile(50), 4.0);
  EXPECT_DOUBLE_EQ(s.percentile(99), 4.0);
}

TEST(Histogram, PercentileMonotoneAndClamped) {
  Histogram h(Histogram::exponential_bounds(1.0, 2.0, 10));
  for (int i = 1; i <= 1000; ++i) h.observe(static_cast<double>(i % 100));
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_DOUBLE_EQ(s.percentile(-5), s.percentile(0));
  EXPECT_DOUBLE_EQ(s.percentile(250), s.percentile(100));
  double prev = s.percentile(0);
  for (int pct = 5; pct <= 100; pct += 5) {
    const double cur = s.percentile(pct);
    EXPECT_GE(cur, prev) << "pct=" << pct;
    prev = cur;
  }
}

TEST(Histogram, ConcurrentObserveCountsEverySample) {
  Histogram h({1.0, 10.0, 100.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i)
        h.observe(static_cast<double>((t + i) % 200));
    });
  for (auto& th : pool) th.join();
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t c : s.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, s.count);
}

TEST(Histogram, ExponentialBoundsShape) {
  const std::vector<double> b = Histogram::exponential_bounds(0.5, 2.0, 6);
  ASSERT_EQ(b.size(), 6u);
  EXPECT_DOUBLE_EQ(b.front(), 0.5);
  for (std::size_t i = 1; i < b.size(); ++i)
    EXPECT_DOUBLE_EQ(b[i], b[i - 1] * 2.0);
  EXPECT_FALSE(Histogram::default_latency_bounds_ms().empty());
}

TEST(Registry, ReturnsStableReferences) {
  Registry reg;
  Counter& c1 = reg.counter("x");
  Counter& c2 = reg.counter("x");
  EXPECT_EQ(&c1, &c2);
  Histogram& h1 = reg.histogram("h", {1.0, 2.0});
  // Bounds apply on first registration only.
  Histogram& h2 = reg.histogram("h", {99.0});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds(), (std::vector<double>{1.0, 2.0}));
  // Empty bounds fall back to the default latency ladder.
  EXPECT_EQ(reg.histogram("lat").bounds(),
            Histogram::default_latency_bounds_ms());
}

TEST(Registry, SnapshotDeterministicAcrossInsertionOrder) {
  const auto populate = [](Registry& reg, bool reversed) {
    const std::vector<std::string> names{"alpha", "beta", "gamma"};
    for (std::size_t i = 0; i < names.size(); ++i) {
      const std::string& n = reversed ? names[names.size() - 1 - i] : names[i];
      reg.counter("c." + n).add(7);
      reg.gauge("g." + n).set(1.25);
      reg.histogram("h." + n, {1.0, 2.0}).observe(1.5);
      reg.set_info("i." + n, "value of " + n);
    }
  };
  Registry a, b;
  populate(a, false);
  populate(b, true);
  const std::string ja = a.snapshot_json();
  EXPECT_EQ(ja, b.snapshot_json());
  // Equal state → byte-identical snapshots, and the document carries all
  // four sections.
  EXPECT_EQ(ja, a.snapshot_json());
  for (const char* key : {"\"counters\"", "\"gauges\"", "\"histograms\"",
                          "\"info\"", "\"c.alpha\"", "\"value of gamma\""})
    EXPECT_NE(ja.find(key), std::string::npos) << key;
}

TEST(Registry, AccessorsMirrorState) {
  Registry reg;
  reg.counter("n").add(3);
  reg.gauge("q").set(4.0);
  reg.histogram("h", {1.0}).observe(0.5);
  reg.set_info("backend", "sim");
  EXPECT_EQ(reg.counter_values().at("n"), 3u);
  EXPECT_DOUBLE_EQ(reg.gauge_values().at("q"), 4.0);
  const auto hists = reg.histogram_snapshots();
  ASSERT_EQ(hists.size(), 1u);
  EXPECT_EQ(hists[0].name, "h");
  EXPECT_EQ(hists[0].snapshot.count, 1u);
  EXPECT_EQ(reg.info_values().at("backend"), "sim");
}

TEST(Registry, WriteFileRoundTripsSnapshot) {
  Registry reg;
  reg.counter("written").add(11);
  const std::string path = ::testing::TempDir() + "obs_registry_rt.json";
  ASSERT_TRUE(reg.write_file(path));
  std::ifstream in(path);
  const std::string on_disk((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
  EXPECT_EQ(on_disk, reg.snapshot_json());
  EXPECT_FALSE(reg.write_file("/nonexistent-dir/registry.json"));
}

TEST(Registry, ConcurrentRegistrationAndUpdates) {
  Registry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back([&reg, t] {
      // Everyone registers the shared metric plus one of its own; lookups
      // and updates race with other registrants on purpose.
      Counter& shared = reg.counter("shared");
      Counter& mine = reg.counter("own." + std::to_string(t));
      Histogram& h = reg.histogram("lat");
      for (int i = 0; i < kIters; ++i) {
        shared.inc();
        mine.inc();
        h.observe(static_cast<double>(i % 7));
        if (i % 512 == 0) (void)reg.snapshot_json();
      }
    });
  for (auto& th : pool) th.join();
  const auto counters = reg.counter_values();
  EXPECT_EQ(counters.at("shared"),
            static_cast<std::uint64_t>(kThreads) * kIters);
  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(counters.at("own." + std::to_string(t)),
              static_cast<std::uint64_t>(kIters));
  EXPECT_EQ(reg.histogram_snapshots().at(0).snapshot.count,
            static_cast<std::uint64_t>(kThreads) * kIters);
}

// -------------------------------------------------------------- tracing ----

TEST(Trace, ArgJsonRendersAndEscapes) {
  EXPECT_EQ(arg_json("k", std::string_view("plain")), "\"k\":\"plain\"");
  EXPECT_EQ(arg_json("k", std::string_view("a\"b\\c")),
            "\"k\":\"a\\\"b\\\\c\"");
  EXPECT_EQ(arg_json("n", std::int64_t{-3}), "\"n\":-3");
  const std::string d = arg_json("x", 1.5);
  EXPECT_EQ(d.substr(0, 5), "\"x\":1");
  EXPECT_NE(d.find("1.5"), std::string::npos);
}

TEST(Trace, DisabledAndNullPathsAreInert) {
  Tracer t;  // constructed disabled
  EXPECT_FALSE(t.enabled());
  {
    Span null_sp = span(nullptr, "a", "cat");
    EXPECT_FALSE(null_sp.active());
    Span off_sp = span(&t, "a", "cat");
    EXPECT_FALSE(off_sp.active());
    off_sp.arg("ignored", 1);  // must be a no-op, not a crash
  }
  t.instant("marker", "cat");  // disabled → dropped silently
  EXPECT_TRUE(t.events().empty());
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(Trace, SpanRecordsCompleteEventWithTypedArgs) {
  Tracer t;
  t.enable();
  {
    Span sp = span(&t, "launch", "device");
    ASSERT_TRUE(sp.active());
    sp.arg("kernel", std::string("push"));
    sp.arg("items", 42);
    sp.arg("ok", true);
    sp.arg("ms", 0.5);
  }
  const std::vector<TraceEvent> evs = t.events();
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].name, "launch");
  EXPECT_EQ(evs[0].cat, "device");
  EXPECT_EQ(evs[0].ph, 'X');
  EXPECT_GE(evs[0].tid, Tracer::kThreadTidBase);
  EXPECT_EQ(evs[0].args,
            "\"kernel\":\"push\",\"items\":42,\"ok\":1,\"ms\":0.5");
}

TEST(Trace, NestedSpansSortEnclosingFirst) {
  Tracer t;
  t.enable();
  // The sleeps separate the three start timestamps at µs resolution so
  // the (ts, tid, -dur, name) sort is exercised on real orderings, not
  // all-zero ties.
  constexpr auto kTick = std::chrono::milliseconds(2);
  {
    Span outer = span(&t, "outer", "test");
    std::this_thread::sleep_for(kTick);
    {
      Span inner = span(&t, "inner", "test");
      std::this_thread::sleep_for(kTick);
      t.instant("tick", "test");
    }
  }
  const std::vector<TraceEvent> evs = t.events();
  ASSERT_EQ(evs.size(), 3u);
  // Deterministic (ts, tid, -dur, name) order: the enclosing span comes
  // before what it contains.
  EXPECT_EQ(evs[0].name, "outer");
  EXPECT_EQ(evs[1].name, "inner");
  EXPECT_EQ(evs[2].name, "tick");
  EXPECT_EQ(evs[2].ph, 'i');
  EXPECT_LE(evs[0].ts_us, evs[1].ts_us);
  EXPECT_GE(evs[0].ts_us + evs[0].dur_us, evs[1].ts_us + evs[1].dur_us);
}

TEST(Trace, MovedFromSpanDoesNotDoubleRecord) {
  Tracer t;
  t.enable();
  {
    Span a = span(&t, "once", "test");
    Span b = std::move(a);
    EXPECT_FALSE(a.active());  // NOLINT(bugprone-use-after-move): contract
    EXPECT_TRUE(b.active());
  }
  EXPECT_EQ(t.events().size(), 1u);
}

TEST(Trace, ExplicitTidsAndRowNamesReachJson) {
  Tracer t;
  t.enable();
  t.name_tid(0, "shard 0 (sim)");
  t.name_tid(96, "coordinator");
  t.complete("push", "shard", 10, 5, arg_json("round", std::int64_t{1}), 0);
  t.instant("barrier", "shard", /*args=*/{}, 96);
  const std::vector<TraceEvent> evs = t.events();
  ASSERT_EQ(evs.size(), 2u);
  for (const TraceEvent& ev : evs)
    EXPECT_EQ(ev.tid, ev.name == "push" ? 0u : 96u) << ev.name;
  const std::string json = t.json();
  for (const char* needle :
       {"thread_name", "shard 0 (sim)", "coordinator", "\"ph\":\"X\"",
        "\"ph\":\"i\"", "\"round\":1"})
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  EXPECT_EQ(json, t.json());  // deterministic for a fixed event set
}

TEST(Trace, ThreadsGetDistinctRowsFromBase) {
  Tracer t;
  t.enable();
  constexpr int kThreads = 3;
  std::vector<std::thread> pool;
  for (int i = 0; i < kThreads; ++i)
    pool.emplace_back([&t] { t.instant("hello", "test"); });
  for (auto& th : pool) th.join();
  std::set<std::uint32_t> tids;
  for (const TraceEvent& ev : t.events()) tids.insert(ev.tid);
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
  for (const std::uint32_t tid : tids) EXPECT_GE(tid, Tracer::kThreadTidBase);
}

TEST(Trace, RingBoundDropsNewestAndCounts) {
  Tracer t(/*per_thread_capacity=*/16);  // 16 is the smallest ring
  t.enable();
  for (int i = 0; i < 40; ++i)
    t.instant("e" + std::to_string(i), "test");
  EXPECT_EQ(t.events().size(), 16u);
  EXPECT_EQ(t.dropped(), 24u);
  // The ring keeps the oldest events (the drop policy sheds the newest).
  EXPECT_EQ(t.events().front().name, "e0");
  t.clear();
  EXPECT_TRUE(t.events().empty());
  EXPECT_EQ(t.dropped(), 0u);
  t.instant("after-clear", "test");
  EXPECT_EQ(t.events().size(), 1u);
}

TEST(Trace, ConcurrentSpansAllRecorded) {
  Tracer t;
  t.enable();
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 200;
  std::vector<std::thread> pool;
  for (int i = 0; i < kThreads; ++i)
    pool.emplace_back([&t, i] {
      for (int s = 0; s < kSpansPerThread; ++s) {
        Span sp = span(&t, "work", "pool");
        sp.arg("thread", i);
        sp.arg("iter", s);
      }
    });
  for (auto& th : pool) th.join();
  EXPECT_EQ(t.events().size(),
            static_cast<std::size_t>(kThreads) * kSpansPerThread);
  EXPECT_EQ(t.dropped(), 0u);
  const auto totals = t.totals_ms("pool");
  ASSERT_EQ(totals.size(), 1u);
  EXPECT_GE(totals.at("work"), 0.0);
}

TEST(Trace, TotalsMsSumsPerNameWithinCategory) {
  Tracer t;
  t.enable();
  t.complete("a", "phase", 0, 1000);
  t.complete("a", "phase", 5000, 2000);
  t.complete("b", "phase", 0, 500);
  t.complete("a", "other", 0, 7000);
  t.instant("a", "phase");  // instants carry no duration
  const std::map<std::string, double> totals = t.totals_ms("phase");
  ASSERT_EQ(totals.size(), 2u);
  EXPECT_DOUBLE_EQ(totals.at("a"), 3.0);
  EXPECT_DOUBLE_EQ(totals.at("b"), 0.5);
  EXPECT_DOUBLE_EQ(t.totals_ms("other").at("a"), 7.0);
}

// -------------------------------------------------- solve conformance ----

/// Names among `evs` whose category is `cat`.
std::set<std::string> names_in(const std::vector<TraceEvent>& evs,
                               std::string_view cat) {
  std::set<std::string> names;
  for (const TraceEvent& ev : evs)
    if (ev.cat == cat) names.insert(ev.name);
  return names;
}

TEST(TraceConformance, GprTracedSolveMatchesUntracedAndRecordsPhases) {
  const BipartiteGraph g = gen::random_uniform(300, 320, 2400, 7);
  const matching::Matching init = matching::cheap_matching(g);

  // Sequential mode so the untraced and traced solves take exactly the
  // same kernel schedule and the stats comparison is meaningful.
  Device plain({.mode = ExecMode::kSequential});
  const gpu::GprResult base = gpu::g_pr(plain, g, init);

  Tracer tracer;
  tracer.enable();
  Device traced({.mode = ExecMode::kSequential});
  traced.set_tracer(&tracer);
  const gpu::GprResult obs_run = gpu::g_pr(traced, g, init);

  ASSERT_TRUE(obs_run.matching.is_valid(g));
  EXPECT_EQ(obs_run.matching.cardinality(), base.matching.cardinality());
  EXPECT_TRUE(matching::is_maximum(g, obs_run.matching));
  EXPECT_EQ(obs_run.stats.loops, base.stats.loops);
  EXPECT_EQ(obs_run.stats.global_relabels, base.stats.global_relabels);
  EXPECT_EQ(obs_run.stats.device_launches, base.stats.device_launches);

  const std::vector<TraceEvent> evs = tracer.events();
  EXPECT_EQ(tracer.dropped(), 0u);
  const std::set<std::string> phases = names_in(evs, "phase");
  EXPECT_TRUE(phases.count("push")) << "no push phase span";
  EXPECT_TRUE(phases.count("global-relabel")) << "no global-relabel span";
  EXPECT_TRUE(names_in(evs, "solve").count("g-pr"));
  EXPECT_FALSE(names_in(evs, "device").empty()) << "no launch spans";
  // Phase totals account for real time: every recorded phase is a
  // complete span with a finite duration.
  for (const auto& [name, ms] : tracer.totals_ms("phase")) {
    EXPECT_GE(ms, 0.0) << name;
  }
}

TEST(TraceConformance, ShardedTracedSolveMatchesAndShowsFleetTimeline) {
  const BipartiteGraph g = gen::random_uniform(400, 420, 3600, 11);
  const matching::Matching init(g);  // empty start → several shard rounds

  std::vector<std::shared_ptr<Engine>> engines;
  for (int i = 0; i < 2; ++i)
    engines.push_back(std::make_shared<Engine>(EngineDescriptor{
        .backend = Backend::kSim,
        .mode = ExecMode::kConcurrent,
        .threads = 2}));

  gpu::GprOptions options;
  options.shards = 2;
  const gpu::GprResult base = gpu::g_pr_sharded(engines, g, init, options);

  Tracer tracer;
  tracer.enable();
  const gpu::GprResult obs_run =
      gpu::g_pr_sharded(engines, g, init, options, &tracer);

  ASSERT_TRUE(obs_run.matching.is_valid(g));
  EXPECT_EQ(obs_run.matching.cardinality(), base.matching.cardinality());
  EXPECT_TRUE(matching::is_maximum(g, obs_run.matching));

  const std::vector<TraceEvent> evs = tracer.events();
  const std::set<std::string> shard_spans = names_in(evs, "shard");
  for (const char* expected :
       {"compact", "push", "apply", "outbox-exchange",
        "global-relabel-barrier"})
    EXPECT_TRUE(shard_spans.count(expected)) << expected;

  // Per-shard work lands on the shard's own timeline row (tid == shard
  // id), and the coordinator's barriers land on a separate row — that
  // separation is what makes the fleet timeline readable.
  std::set<std::uint32_t> worker_tids, coordinator_tids;
  for (const TraceEvent& ev : evs) {
    if (ev.cat != "shard") continue;
    if (ev.name == "outbox-exchange" || ev.name == "global-relabel-barrier")
      coordinator_tids.insert(ev.tid);
    else
      worker_tids.insert(ev.tid);
  }
  EXPECT_EQ(worker_tids, (std::set<std::uint32_t>{0u, 1u}));
  ASSERT_EQ(coordinator_tids.size(), 1u);
  EXPECT_FALSE(worker_tids.count(*coordinator_tids.begin()));

  // The fleet rows are labeled for Perfetto.
  const std::string json = tracer.json();
  for (const char* needle : {"shard 0", "shard 1", "coordinator"})
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
}

}  // namespace
}  // namespace bpm::obs
