#include <gtest/gtest.h>

#include "graph/bipartite_graph.hpp"
#include "graph/builder.hpp"

namespace bpm::graph {
namespace {

TEST(Builder, BuildsBothCsrDirections) {
  // 2 rows, 3 cols: edges (0,0) (0,2) (1,1).
  const std::vector<Edge> edges{{0, 0}, {0, 2}, {1, 1}};
  const BipartiteGraph g = build_from_edges(2, 3, edges);
  EXPECT_EQ(g.num_rows(), 2);
  EXPECT_EQ(g.num_cols(), 3);
  EXPECT_EQ(g.num_edges(), 3);

  ASSERT_EQ(g.row_neighbors(0).size(), 2u);
  EXPECT_EQ(g.row_neighbors(0)[0], 0);
  EXPECT_EQ(g.row_neighbors(0)[1], 2);
  ASSERT_EQ(g.col_neighbors(1).size(), 1u);
  EXPECT_EQ(g.col_neighbors(1)[0], 1);
  EXPECT_EQ(g.col_neighbors(2)[0], 0);
}

TEST(Builder, RemovesDuplicateEdges) {
  const std::vector<Edge> edges{{0, 0}, {0, 0}, {0, 0}, {1, 1}};
  const BipartiteGraph g = build_from_edges(2, 2, edges);
  EXPECT_EQ(g.num_edges(), 2);
}

TEST(Builder, SortsAdjacency) {
  const std::vector<Edge> edges{{0, 3}, {0, 1}, {0, 2}, {0, 0}};
  const BipartiteGraph g = build_from_edges(1, 4, edges);
  const auto nbrs = g.row_neighbors(0);
  for (std::size_t i = 1; i < nbrs.size(); ++i) EXPECT_LT(nbrs[i - 1], nbrs[i]);
}

TEST(Builder, RejectsOutOfRangeEndpoints) {
  EXPECT_THROW(build_from_edges(2, 2, std::vector<Edge>{{2, 0}}),
               std::invalid_argument);
  EXPECT_THROW(build_from_edges(2, 2, std::vector<Edge>{{0, -1}}),
               std::invalid_argument);
}

TEST(Builder, EmptyGraphIsFine) {
  const BipartiteGraph g = build_from_edges(0, 0, std::vector<Edge>{});
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_EQ(g.psi_infinity(), 0);
}

TEST(Builder, IsolatedVerticesKeepEmptyAdjacency) {
  const BipartiteGraph g = build_from_edges(3, 3, std::vector<Edge>{{1, 1}});
  EXPECT_TRUE(g.row_neighbors(0).empty());
  EXPECT_TRUE(g.row_neighbors(2).empty());
  EXPECT_EQ(g.row_neighbors(1).size(), 1u);
}

TEST(Graph, HasEdge) {
  const BipartiteGraph g =
      build_from_edges(2, 2, std::vector<Edge>{{0, 1}, {1, 0}});
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 0));
  EXPECT_FALSE(g.has_edge(-1, 0));
  EXPECT_FALSE(g.has_edge(0, 5));
}

TEST(Graph, PsiInfinityIsMPlusN) {
  const BipartiteGraph g = build_from_edges(3, 5, std::vector<Edge>{{0, 0}});
  EXPECT_EQ(g.psi_infinity(), 8);
}

TEST(Graph, DegreeAccessors) {
  const BipartiteGraph g =
      build_from_edges(2, 2, std::vector<Edge>{{0, 0}, {0, 1}, {1, 1}});
  EXPECT_EQ(g.row_degree(0), 2);
  EXPECT_EQ(g.row_degree(1), 1);
  EXPECT_EQ(g.col_degree(0), 1);
  EXPECT_EQ(g.col_degree(1), 2);
}

TEST(Graph, ValidateRejectsInconsistentCsr) {
  // Mismatched edge counts between the two directions.
  EXPECT_THROW(BipartiteGraph(1, 1, {0, 1}, {0}, {0, 0}, {}),
               std::invalid_argument);
}

TEST(Graph, DescribeMentionsShape) {
  const BipartiteGraph g = build_from_edges(2, 3, std::vector<Edge>{{0, 0}});
  const std::string d = g.describe();
  EXPECT_NE(d.find("2 rows"), std::string::npos);
  EXPECT_NE(d.find("3 cols"), std::string::npos);
}

TEST(Permute, PreservesShapeAndDegreeMultiset) {
  const std::vector<Edge> edges{{0, 0}, {0, 1}, {1, 1}, {2, 2}, {2, 0}};
  const BipartiteGraph g = build_from_edges(3, 3, edges);
  const BipartiteGraph p = permute_vertices(g, 99);
  EXPECT_EQ(p.num_rows(), g.num_rows());
  EXPECT_EQ(p.num_cols(), g.num_cols());
  EXPECT_EQ(p.num_edges(), g.num_edges());

  auto degree_multiset = [](const BipartiteGraph& x) {
    std::vector<index_t> d;
    for (index_t u = 0; u < x.num_rows(); ++u) d.push_back(x.row_degree(u));
    std::sort(d.begin(), d.end());
    return d;
  };
  EXPECT_EQ(degree_multiset(g), degree_multiset(p));
}

TEST(Permute, DeterministicPerSeed) {
  const std::vector<Edge> edges{{0, 0}, {1, 1}, {2, 2}, {0, 2}};
  const BipartiteGraph g = build_from_edges(3, 3, edges);
  const BipartiteGraph a = permute_vertices(g, 7);
  const BipartiteGraph b = permute_vertices(g, 7);
  EXPECT_EQ(a.row_adj(), b.row_adj());
  EXPECT_EQ(a.row_ptr(), b.row_ptr());
}

}  // namespace
}  // namespace bpm::graph
