#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "matching/greedy.hpp"
#include "matching/matching.hpp"
#include "matching/verify.hpp"

namespace bpm::matching {
namespace {

using graph::BipartiteGraph;
using graph::Edge;
using graph::build_from_edges;
namespace gen = graph::gen;

// ------------------------------------------------------------- Matching ----

TEST(Matching, EmptyMatchingHasZeroCardinality) {
  const BipartiteGraph g = gen::complete_bipartite(3, 3);
  const Matching m(g);
  EXPECT_EQ(m.cardinality(), 0);
  EXPECT_TRUE(m.is_valid(g));
}

TEST(Matching, MatchUpdatesBothSides) {
  const BipartiteGraph g = gen::complete_bipartite(3, 3);
  Matching m(g);
  m.match(0, 2);
  EXPECT_EQ(m.cardinality(), 1);
  EXPECT_EQ(m.row_match[0], 2);
  EXPECT_EQ(m.col_match[2], 0);
  EXPECT_TRUE(m.is_valid(g));
}

TEST(Matching, MatchThrowsOnBusyEndpoint) {
  const BipartiteGraph g = gen::complete_bipartite(2, 2);
  Matching m(g);
  m.match(0, 0);
  EXPECT_THROW(m.match(0, 1), std::logic_error);
  EXPECT_THROW(m.match(1, 0), std::logic_error);
}

TEST(Matching, DetectsMutualDisagreement) {
  const BipartiteGraph g = gen::complete_bipartite(2, 2);
  Matching m(g);
  m.row_match[0] = 0;  // row claims column 0 …
  // … but column 0 claims nothing.
  EXPECT_FALSE(m.is_valid(g));
  EXPECT_NE(m.first_violation(g).find("row 0"), std::string::npos);
}

TEST(Matching, DetectsNonEdgePair) {
  const BipartiteGraph g = build_from_edges(2, 2, std::vector<Edge>{{0, 0}});
  Matching m(g);
  m.row_match[1] = 1;
  m.col_match[1] = 1;  // mutually consistent but (1,1) is not an edge
  EXPECT_FALSE(m.is_valid(g));
  EXPECT_NE(m.first_violation(g).find("not an edge"), std::string::npos);
}

TEST(Matching, DetectsOutOfRangeEntries) {
  const BipartiteGraph g = gen::complete_bipartite(2, 2);
  Matching m(g);
  m.row_match[0] = 7;
  EXPECT_FALSE(m.is_valid(g));
}

TEST(Matching, UnmatchableColumnsAreValid) {
  const BipartiteGraph g = gen::complete_bipartite(2, 2);
  Matching m(g);
  m.col_match[0] = kUnmatchable;
  EXPECT_TRUE(m.is_valid(g));
  EXPECT_EQ(m.cardinality(), 0);
}

TEST(Matching, ShapeMismatchIsInvalid) {
  const BipartiteGraph g = gen::complete_bipartite(2, 2);
  Matching m;
  EXPECT_FALSE(m.is_valid(g));
}

// --------------------------------------------------------------- verify ----

TEST(Verify, PerfectMatchingIsMaximum) {
  const BipartiteGraph g = gen::chain(4);
  Matching m(g);
  for (graph::index_t i = 0; i < 4; ++i) m.match(i, i);
  EXPECT_TRUE(is_maximum(g, m));
  EXPECT_EQ(deficiency(g, m), 0);
}

TEST(Verify, DetectsAugmentingPath) {
  // Chain r0-c0-r1-c1: matching {r1-c0} leaves the augmenting path
  // c1 - r1 - c0 - r0.
  const BipartiteGraph g = gen::chain(2);
  Matching m(g);
  m.match(1, 0);
  EXPECT_FALSE(is_maximum(g, m));
  EXPECT_EQ(deficiency(g, m), 1);
}

TEST(Verify, EmptyMatchingOnEdgelessGraphIsMaximum) {
  const BipartiteGraph g = gen::empty_graph(3, 3);
  const Matching m(g);
  EXPECT_TRUE(is_maximum(g, m));
  EXPECT_EQ(reference_maximum_cardinality(g), 0);
}

TEST(Verify, ReferenceCardinalityKnownCases) {
  EXPECT_EQ(reference_maximum_cardinality(gen::complete_bipartite(3, 5)), 3);
  EXPECT_EQ(reference_maximum_cardinality(gen::star(9)), 1);
  EXPECT_EQ(reference_maximum_cardinality(gen::chain(6)), 6);
  // Planted perfect matching: always n.
  EXPECT_EQ(reference_maximum_cardinality(gen::planted_perfect(40, 1.5, 3)),
            40);
}

TEST(Verify, ReferenceCardinalityStructuredDeficiency) {
  // Two columns share their only row: max matching 1, not 2.
  const BipartiteGraph g =
      build_from_edges(1, 2, std::vector<Edge>{{0, 0}, {0, 1}});
  EXPECT_EQ(reference_maximum_cardinality(g), 1);
}

// --------------------------------------------------------------- greedy ----

TEST(Greedy, CheapMatchingIsValidAndMaximal) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const BipartiteGraph g = gen::random_uniform(80, 80, 320, seed);
    const Matching m = cheap_matching(g);
    EXPECT_TRUE(m.is_valid(g));
    // Maximal: no edge with both endpoints free.
    for (graph::index_t u = 0; u < g.num_rows(); ++u) {
      if (m.row_match[static_cast<std::size_t>(u)] != kUnmatched) continue;
      for (graph::index_t v : g.row_neighbors(u))
        EXPECT_NE(m.col_match[static_cast<std::size_t>(v)], kUnmatched)
            << "edge (" << u << "," << v << ") has both endpoints free";
    }
  }
}

TEST(Greedy, CheapMatchingOnStarTakesOne) {
  const Matching m = cheap_matching(gen::star(5));
  EXPECT_EQ(m.cardinality(), 1);
}

TEST(Greedy, KarpSipserValidAndAtLeastCheapOnSparse) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const BipartiteGraph g = gen::road_network(20, 20, 0.8, seed);
    const Matching ks = karp_sipser(g);
    EXPECT_TRUE(ks.is_valid(g));
    const Matching cheap = cheap_matching(g);
    // Karp–Sipser's degree-1 rule never loses to blind greedy on average;
    // allow equality but catch regressions where it returns garbage.
    EXPECT_GE(ks.cardinality(), cheap.cardinality() - 2);
  }
}

TEST(Greedy, KarpSipserPendantRuleIsOptimalOnChains) {
  // On a chain, repeatedly matching degree-1 vertices yields a perfect
  // matching — plain greedy can fall one short depending on order.
  const Matching ks = karp_sipser(gen::chain(9));
  EXPECT_EQ(ks.cardinality(), 9);
}

TEST(Greedy, BothHeuristicsHandleEmptyAndEdgeless) {
  const BipartiteGraph g = gen::empty_graph(4, 4);
  EXPECT_EQ(cheap_matching(g).cardinality(), 0);
  EXPECT_EQ(karp_sipser(g).cardinality(), 0);
}

}  // namespace
}  // namespace bpm::matching
