#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "matching/dulmage_mendelsohn.hpp"
#include "matching/hopcroft_karp.hpp"
#include "matching/matching.hpp"
#include "matching/verify.hpp"

namespace bpm::matching {
namespace {

using graph::BipartiteGraph;
using graph::Edge;
using graph::build_from_edges;
using graph::index_t;
namespace gen = graph::gen;

Matching max_matching(const BipartiteGraph& g) {
  return hopcroft_karp(g, Matching(g));
}

// ----------------------------------------------------- Dulmage-Mendelsohn ----

TEST(DulmageMendelsohn, PerfectMatchingIsSquareOnly) {
  const BipartiteGraph g = gen::planted_perfect(30, 1.0, 2);
  const auto dm = dulmage_mendelsohn(g, max_matching(g));
  EXPECT_TRUE(dm.is_square_only());
  EXPECT_EQ(dm.square_rows, 30);
  EXPECT_EQ(dm.square_cols, 30);
}

TEST(DulmageMendelsohn, StarSplitsIntoHorizontalBlock) {
  // One row, many columns: all-but-one column unmatched, so the row and
  // every column are reachable from unmatched columns -> horizontal.
  const BipartiteGraph g = gen::star(5);
  const auto dm = dulmage_mendelsohn(g, max_matching(g));
  EXPECT_EQ(dm.horizontal_rows, 1);
  EXPECT_EQ(dm.horizontal_cols, 5);
  EXPECT_EQ(dm.square_rows, 0);
  EXPECT_EQ(dm.vertical_rows, 0);
}

TEST(DulmageMendelsohn, TransposedStarIsVertical) {
  // Many rows, one column: unmatched rows reach everything -> vertical.
  const BipartiteGraph g = build_from_edges(
      5, 1, std::vector<Edge>{{0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 0}});
  const auto dm = dulmage_mendelsohn(g, max_matching(g));
  EXPECT_EQ(dm.vertical_rows, 5);
  EXPECT_EQ(dm.vertical_cols, 1);
  EXPECT_EQ(dm.horizontal_cols, 0);
}

TEST(DulmageMendelsohn, MixedBlocksOnComposedGraph) {
  // Disjoint union: a star (horizontal), a perfect 2x2 block (square),
  // and a transposed star (vertical).
  std::vector<Edge> edges;
  // Horizontal: row 0 with columns 0..2.
  for (index_t j = 0; j < 3; ++j) edges.push_back({0, j});
  // Square: rows 1-2 with columns 3-4 (diagonal + one off edge).
  edges.push_back({1, 3});
  edges.push_back({2, 4});
  edges.push_back({1, 4});
  // Vertical: rows 3-5 with column 5.
  for (index_t i = 3; i < 6; ++i) edges.push_back({i, 5});
  const BipartiteGraph g = build_from_edges(6, 6, edges);
  const auto dm = dulmage_mendelsohn(g, max_matching(g));
  EXPECT_EQ(dm.horizontal_rows, 1);
  EXPECT_EQ(dm.horizontal_cols, 3);
  EXPECT_EQ(dm.square_rows, 2);
  EXPECT_EQ(dm.square_cols, 2);
  EXPECT_EQ(dm.vertical_rows, 3);
  EXPECT_EQ(dm.vertical_cols, 1);
}

TEST(DulmageMendelsohn, BlockSizesAlwaysPartition) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const BipartiteGraph g = gen::chung_lu(120, 140, 2.5, 2.3, seed);
    const auto dm = dulmage_mendelsohn(g, max_matching(g));
    EXPECT_EQ(dm.horizontal_rows + dm.square_rows + dm.vertical_rows,
              g.num_rows());
    EXPECT_EQ(dm.horizontal_cols + dm.square_cols + dm.vertical_cols,
              g.num_cols());
    // Structural properties of the coarse decomposition:
    // the square block is perfectly matched.
    EXPECT_EQ(dm.square_rows, dm.square_cols);
    // horizontal has more columns than rows, vertical more rows than cols
    // (strictly, unless empty).
    if (dm.horizontal_cols > 0) EXPECT_LT(dm.horizontal_rows, dm.horizontal_cols);
    if (dm.vertical_rows > 0) EXPECT_LT(dm.vertical_cols, dm.vertical_rows);
  }
}

TEST(DulmageMendelsohn, NoEdgeCrossesFromSquareToHorizontal) {
  // Block-triangular structure: an edge from a square-block row can only
  // go to square or vertical columns... in fact for the coarse DM:
  // horizontal columns see only horizontal rows.
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const BipartiteGraph g = gen::random_uniform(80, 100, 260, seed);
    const auto dm = dulmage_mendelsohn(g, max_matching(g));
    for (index_t u = 0; u < g.num_rows(); ++u) {
      for (index_t v : g.row_neighbors(u)) {
        // A non-horizontal row adjacent to a column v means v's
        // alternating reach (if any) passes through u; if v were
        // horizontal, u would be horizontal too.
        if (dm.col_block[static_cast<std::size_t>(v)] ==
            DulmageMendelsohn::Block::kHorizontal)
          EXPECT_EQ(dm.row_block[static_cast<std::size_t>(u)],
                    DulmageMendelsohn::Block::kHorizontal)
              << "edge (" << u << "," << v << ")";
      }
    }
  }
}

TEST(DulmageMendelsohn, RejectsNonMaximumMatching) {
  // chain(2) with the "wrong" single edge leaves an augmenting path; both
  // reach sets then overlap and the decomposition must refuse.
  const BipartiteGraph g = gen::chain(2);
  Matching m(g);
  m.match(1, 0);
  EXPECT_THROW((void)dulmage_mendelsohn(g, m), std::logic_error);
}

TEST(DulmageMendelsohn, RejectsInvalidMatching) {
  const BipartiteGraph g = gen::complete_bipartite(2, 2);
  Matching bad(g);
  bad.row_match[0] = 0;  // one-sided
  EXPECT_THROW((void)dulmage_mendelsohn(g, bad), std::invalid_argument);
}

// ---------------------------------------------------------- vertex cover ----

TEST(VertexCover, SizeEqualsMatchingOnManyGraphs) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const BipartiteGraph g = gen::random_uniform(70, 90, 300, seed);
    const Matching m = max_matching(g);
    const VertexCover cover = minimum_vertex_cover(g, m);
    EXPECT_EQ(cover.size(), m.cardinality()) << "seed " << seed;
  }
}

TEST(VertexCover, CoversEveryEdge) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const BipartiteGraph g = gen::chung_lu(150, 150, 3.0, 2.4, seed);
    const VertexCover cover = minimum_vertex_cover(g, max_matching(g));
    for (index_t u = 0; u < g.num_rows(); ++u)
      for (index_t v : g.row_neighbors(u))
        EXPECT_TRUE(cover.row_in_cover[static_cast<std::size_t>(u)] ||
                    cover.col_in_cover[static_cast<std::size_t>(v)])
            << "uncovered edge (" << u << "," << v << ") seed " << seed;
  }
}

TEST(VertexCover, StarNeedsOnlyTheCenter) {
  const BipartiteGraph g = gen::star(7);
  const VertexCover cover = minimum_vertex_cover(g, max_matching(g));
  EXPECT_EQ(cover.size(), 1);
  EXPECT_TRUE(cover.row_in_cover[0]);
}

TEST(VertexCover, EmptyGraphNeedsNothing) {
  const BipartiteGraph g = gen::empty_graph(4, 4);
  const VertexCover cover = minimum_vertex_cover(g, Matching(g));
  EXPECT_EQ(cover.size(), 0);
}

}  // namespace
}  // namespace bpm::matching
