// Property: maximum matching cardinality is a graph invariant — relabeling
// vertices must not change any algorithm's answer.  Catches order-dependent
// bugs (cursor arithmetic, early exits, active-list bookkeeping) that
// fixed-layout tests can miss.

#include <gtest/gtest.h>

#include "core/g_hk.hpp"
#include "core/g_pr.hpp"
#include "core/shard.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "matching/greedy.hpp"
#include "matching/hkdw.hpp"
#include "matching/hopcroft_karp.hpp"
#include "matching/pothen_fan.hpp"
#include "matching/seq_pr.hpp"
#include "multicore/pdbfs.hpp"

namespace bpm {
namespace {

using device::Device;
using device::ExecMode;
using graph::BipartiteGraph;
using graph::index_t;
namespace gen = graph::gen;

index_t cardinality_of(const std::string& algo, const BipartiteGraph& g) {
  const matching::Matching init = matching::cheap_matching(g);
  if (algo == "seq_pr") return matching::seq_push_relabel(g, init).cardinality();
  if (algo == "hk") return matching::hopcroft_karp(g, init).cardinality();
  if (algo == "pf") return matching::pothen_fan(g, init).cardinality();
  if (algo == "hkdw") return matching::hkdw(g, init).cardinality();
  if (algo == "pdbfs")
    return mc::p_dbfs(g, init, {.num_threads = 4}).matching.cardinality();
  if (algo == "g_pr") {
    Device dev({.mode = ExecMode::kConcurrent, .num_threads = 4});
    return gpu::g_pr(dev, g, init).matching.cardinality();
  }
  if (algo == "g_pr_wb") {
    Device dev({.mode = ExecMode::kConcurrent, .num_threads = 4});
    gpu::GprOptions opt;
    opt.balance = gpu::BalanceMode::kOn;
    return gpu::g_pr(dev, g, init, opt).matching.cardinality();
  }
  if (algo == "g_hkdw") {
    Device dev({.mode = ExecMode::kConcurrent, .num_threads = 4});
    return gpu::g_hk(dev, g, init).matching.cardinality();
  }
  if (algo == "g_pr_sh") {
    // The sharded driver across 3 engines: the shard cut moves with the
    // permutation, so the invariant also exercises the boundary
    // reconciliation.
    std::vector<std::shared_ptr<device::Engine>> engines;
    for (int e = 0; e < 3; ++e)
      engines.push_back(std::make_shared<device::Engine>(
          device::EngineDescriptor{.mode = ExecMode::kConcurrent,
                                   .threads = 2}));
    gpu::GprOptions opt;
    opt.shards = 3;
    return gpu::g_pr_sharded(engines, g, init, opt).matching.cardinality();
  }
  ADD_FAILURE() << "unknown algo " << algo;
  return -1;
}

class PermutationInvariance : public ::testing::TestWithParam<const char*> {};

TEST_P(PermutationInvariance, CardinalityStableUnderRelabeling) {
  const std::vector<BipartiteGraph> bases = {
      gen::random_uniform(90, 90, 320, 3),
      gen::chung_lu(150, 150, 3.0, 2.4, 5),
      gen::rmat(7, 4.0, 7),
      gen::trace_mesh(50, 3, 0.05, 9),
      gen::skewed_hubs(120, 140, 3, 0.3, 2.5, 13),
  };
  for (std::size_t b = 0; b < bases.size(); ++b) {
    const index_t base_card = cardinality_of(GetParam(), bases[b]);
    for (std::uint64_t perm_seed = 1; perm_seed <= 3; ++perm_seed) {
      const BipartiteGraph permuted =
          graph::permute_vertices(bases[b], perm_seed);
      EXPECT_EQ(cardinality_of(GetParam(), permuted), base_card)
          << GetParam() << " base " << b << " perm " << perm_seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Algorithms, PermutationInvariance,
                         ::testing::Values("seq_pr", "hk", "pf", "hkdw",
                                           "pdbfs", "g_pr", "g_pr_wb",
                                           "g_pr_sh", "g_hkdw"),
                         [](const auto& param_info) {
                           return std::string(param_info.param);
                         });

}  // namespace
}  // namespace bpm
