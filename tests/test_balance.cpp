// Conformance and stress suite for the workload-balanced G-PR path
// (GprOptions::balance / solver `g-pr-wb`): the edge-balanced frontier
// driver must return the same maximum cardinality as every vertex-parallel
// variant on every instance, at any worker count, under oversubscription —
// and its frontier-compaction counters must be TSan-clean (this suite runs
// in the CI ThreadSanitizer job).

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/g_pr.hpp"
#include "core/solver.hpp"
#include "graph/generators.hpp"
#include "graph/instances.hpp"
#include "matching/greedy.hpp"
#include "matching/verify.hpp"

namespace bpm {
namespace {

using device::Device;
using device::ExecMode;
using graph::BipartiteGraph;
using graph::index_t;
namespace gen = graph::gen;

index_t balanced_cardinality(const BipartiteGraph& g, unsigned threads,
                             gpu::GprVariant variant = gpu::GprVariant::kShrink,
                             bool concurrent_gr = false) {
  Device dev({.mode = ExecMode::kConcurrent, .num_threads = threads});
  gpu::GprOptions opt;
  opt.variant = variant;
  opt.balance = gpu::BalanceMode::kOn;
  opt.concurrent_global_relabel = concurrent_gr;
  const matching::Matching init = matching::cheap_matching(g);
  const gpu::GprResult r = gpu::g_pr(dev, g, init, opt);
  EXPECT_TRUE(r.matching.is_valid(g)) << r.matching.first_violation(g);
  EXPECT_TRUE(matching::is_maximum(g, r.matching));
  // Any run that had unmatched columns to process went through the
  // frontier compaction (greedy-perfect instances skip the loop entirely).
  if (init.cardinality() < r.matching.cardinality())
    EXPECT_GT(r.stats.frontier_builds, 0);
  return r.matching.cardinality();
}

std::vector<std::pair<std::string, BipartiteGraph>> randomized_suite(
    std::uint64_t seed) {
  std::vector<std::pair<std::string, BipartiteGraph>> out;
  out.emplace_back("random", gen::random_uniform(150, 150, 600, seed));
  out.emplace_back("wide", gen::random_uniform(80, 200, 500, seed));
  out.emplace_back("chung_lu", gen::chung_lu(220, 220, 4.0, 2.3, seed));
  out.emplace_back("skew_scatter", gen::skewed_hubs(170, 200, 4, 0.3, 2.5, seed));
  out.emplace_back("skew_block",
                   gen::skewed_hubs(180, 200, 24, 0.15, 2.0, seed,
                                    /*scatter=*/false));
  out.emplace_back("trace", gen::trace_mesh(60, 3, 0.06, seed));
  out.emplace_back("planted", gen::planted_perfect(90, 1.5, seed));
  out.emplace_back("star", gen::star(50));
  out.emplace_back("chain", gen::chain(40));
  out.emplace_back("empty", gen::empty_graph(20, 20));
  return out;
}

// ---------------------------------------------------------- conformance ----

TEST(Balance, MatchesReferenceCardinalityAcrossRandomizedSuite) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    for (const auto& [name, g] : randomized_suite(seed)) {
      const index_t want = matching::reference_maximum_cardinality(g);
      if (g.num_edges() == 0) {
        // The balanced driver never builds a frontier on an empty graph;
        // just check the result shape.
        Device dev({.mode = ExecMode::kConcurrent, .num_threads = 4});
        gpu::GprOptions opt;
        opt.balance = gpu::BalanceMode::kOn;
        EXPECT_EQ(gpu::g_pr(dev, g, matching::cheap_matching(g), opt)
                      .matching.cardinality(),
                  want);
        continue;
      }
      EXPECT_EQ(balanced_cardinality(g, 4), want)
          << name << "#" << seed;
    }
  }
}

TEST(Balance, EveryVariantRoutesThroughTheBalancedDriver) {
  // The balance knob subsumes the variant distinction; all three must
  // still agree with the reference.
  const BipartiteGraph g = gen::skewed_hubs(150, 180, 6, 0.25, 2.5, 9);
  const index_t want = matching::reference_maximum_cardinality(g);
  for (const auto variant :
       {gpu::GprVariant::kFirst, gpu::GprVariant::kNoShrink,
        gpu::GprVariant::kShrink})
    EXPECT_EQ(balanced_cardinality(g, 4, variant), want)
        << to_string(variant);
}

TEST(Balance, AgreesUnderConcurrentGlobalRelabel) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const BipartiteGraph g = gen::chung_lu(200, 200, 4.0, 2.3, seed);
    const index_t want = matching::reference_maximum_cardinality(g);
    EXPECT_EQ(balanced_cardinality(g, 4, gpu::GprVariant::kShrink,
                                   /*concurrent_gr=*/true),
              want)
        << "seed " << seed;
  }
}

TEST(Balance, WorkerCountDoesNotChangeCardinality) {
  const BipartiteGraph g = gen::skewed_hubs(300, 340, 8, 0.2, 2.5, 3);
  const index_t want = matching::reference_maximum_cardinality(g);
  // Includes heavy oversubscription (workers >> cores) to widen the space
  // of interleavings the racy kernels observe.
  for (const unsigned threads : {1u, 2u, 4u, 16u, 32u})
    EXPECT_EQ(balanced_cardinality(g, threads), want)
        << threads << " workers";
}

TEST(Balance, MiniaturePaperInstancesAgree) {
  for (const auto& inst : graph::select_instances(7)) {
    const BipartiteGraph g = inst.build(0.0008, 5);
    const index_t want = matching::reference_maximum_cardinality(g);
    EXPECT_EQ(balanced_cardinality(g, 4), want) << inst.name;
  }
}

// ------------------------------------------------------- solver surface ----

TEST(Balance, GprWbIsRegisteredAndDispatchable) {
  auto solver = SolverRegistry::instance().create("g-pr-wb");
  ASSERT_NE(solver, nullptr);
  EXPECT_EQ(solver->name(), "g-pr-wb");
  EXPECT_TRUE(solver->caps().needs_device);
  EXPECT_TRUE(solver->caps().exact);
  // g-pr-wb defaults to balance=auto, which is a balanced capability for
  // routing purposes and reports its per-solve skew decision.
  EXPECT_TRUE(solver->caps().balanced);

  const BipartiteGraph g = gen::skewed_hubs(120, 150, 4, 0.3, 2.0, 7);
  Device dev({.mode = ExecMode::kConcurrent, .num_threads = 4});
  const SolveContext ctx{.device = &dev};
  const matching::Matching init = matching::cheap_matching(g);
  const SolveResult r = solver->run(ctx, g, init);
  EXPECT_EQ(r.stats.cardinality, matching::reference_maximum_cardinality(g));
  // The host backend measures wall time instead of charging the model.
  if (device::default_backend() == device::Backend::kHost)
    EXPECT_EQ(r.stats.modeled_ms, 0.0);
  else
    EXPECT_GT(r.stats.modeled_ms, 0.0);
  EXPECT_NE(r.stats.detail.find("skew "), std::string::npos);

  // Forcing the balanced path keeps the pre-auto behaviour (and its
  // frontier-compaction counter in the detail line).
  auto forced = SolverRegistry::instance().create("g-pr-wb");
  ASSERT_TRUE(forced->set_option("balance", "1"));
  const SolveResult rf = forced->run(ctx, g, init);
  EXPECT_EQ(rf.stats.cardinality, r.stats.cardinality);
  EXPECT_NE(rf.stats.detail.find("frontier builds"), std::string::npos);
}

TEST(Balance, AutoModeDecidesBySkewThreshold) {
  // A hub-block instance whose max/mean unmatched-column degree is far
  // above 1: with the threshold below the measured skew auto must run
  // balanced, with it above auto must fall back to vertex-parallel —
  // both agreeing on the cardinality.
  const BipartiteGraph g =
      gen::skewed_hubs(200, 240, 10, 0.2, 2.5, 11, /*scatter=*/false);
  const index_t want = matching::reference_maximum_cardinality(g);
  const matching::Matching init = matching::cheap_matching(g);
  for (const double threshold : {1.0, 1e9}) {
    Device dev({.mode = ExecMode::kConcurrent, .num_threads = 4});
    gpu::GprOptions opt;
    opt.balance = gpu::BalanceMode::kAuto;
    opt.balance_skew_threshold = threshold;
    const gpu::GprResult r = gpu::g_pr(dev, g, init, opt);
    EXPECT_EQ(r.matching.cardinality(), want) << "threshold " << threshold;
    EXPECT_GT(r.stats.balance_skew, 0.0);
    EXPECT_EQ(r.stats.balanced, threshold < r.stats.balance_skew);
    if (init.cardinality() < want)
      EXPECT_EQ(r.stats.frontier_builds > 0, r.stats.balanced);
  }
}

TEST(Balance, BalanceOptionSweepsOnEveryGprSolver) {
  // `balance` is a SolverSpec-sweepable knob: g-pr-shr:balance=1 runs the
  // balanced driver, g-pr-wb:balance=0 runs the vertex-parallel one.
  const BipartiteGraph g = gen::random_uniform(100, 100, 420, 3);
  const index_t want = matching::reference_maximum_cardinality(g);
  Device dev({.mode = ExecMode::kConcurrent, .num_threads = 4});
  const SolveContext ctx{.device = &dev};
  const matching::Matching init = matching::cheap_matching(g);
  for (const std::string spec :
       {"g-pr-shr:balance=1", "g-pr-noshr:balance=on", "g-pr-first:balance=1",
        "g-pr-wb:balance=0", "g-pr-wb:k=1.5"}) {
    const SolveResult r = SolverSpec::parse(spec).instantiate()->run(ctx, g, init);
    EXPECT_EQ(r.stats.cardinality, want) << spec;
  }
  EXPECT_THROW(
      (void)SolverSpec::parse("g-pr-wb:balance=maybe").instantiate(),
      std::invalid_argument);
}

// ---------------------------------------------------------- TSan stress ----

TEST(Balance, FrontierCompactionCountersUnderConcurrentStreams) {
  // The frontier-compaction counters (padded per-chunk tallies, the
  // prefix over worker counts, the SoA write pass) and the balanced
  // launch's lane tallies must be race-free when several streams drive
  // balanced runs through one shared engine concurrently — this is the
  // suite the CI TSan job audits.
  const auto engine =
      std::make_shared<device::Engine>(ExecMode::kConcurrent, 4);
  constexpr int kStreams = 4;
  std::vector<std::thread> streams;
  std::vector<index_t> got(kStreams, -1);
  std::vector<index_t> want(kStreams, -1);
  for (int s = 0; s < kStreams; ++s)
    streams.emplace_back([&, s] {
      const auto seed = static_cast<std::uint64_t>(s);
      const BipartiteGraph g =
          gen::skewed_hubs(160, 190, 6, 0.25, 2.5, seed,
                           /*scatter=*/(s % 2) == 0);
      want[static_cast<std::size_t>(s)] =
          matching::reference_maximum_cardinality(g);
      Device stream(engine);
      gpu::GprOptions opt;
      opt.balance = gpu::BalanceMode::kOn;
      opt.concurrent_global_relabel = (s % 2) == 1;
      const gpu::GprResult r =
          gpu::g_pr(stream, g, matching::cheap_matching(g), opt);
      got[static_cast<std::size_t>(s)] = r.matching.cardinality();
    });
  for (auto& t : streams) t.join();
  for (int s = 0; s < kStreams; ++s)
    EXPECT_EQ(got[static_cast<std::size_t>(s)],
              want[static_cast<std::size_t>(s)])
        << "stream " << s;
}

}  // namespace
}  // namespace bpm
