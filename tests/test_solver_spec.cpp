// SolverSpec (core/solver.hpp): the `name:key=val,key=val` grammar every
// CLI surface uses for tuned solvers — parsing, list parsing with option
// continuation, canonical round-trips, instantiation, and the loud
// failure modes (malformed specs and unknown names must name the
// registered solvers).

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/solver.hpp"
#include "graph/generators.hpp"
#include "matching/matching.hpp"
#include "util/rng.hpp"

namespace bpm {
namespace {

TEST(SolverSpec, ParsesABareName) {
  const SolverSpec spec = SolverSpec::parse("g-pr-shr");
  EXPECT_EQ(spec.name, "g-pr-shr");
  EXPECT_TRUE(spec.options.empty());
  EXPECT_EQ(spec.canonical(), "g-pr-shr");
}

TEST(SolverSpec, ParsesOptions) {
  const SolverSpec spec = SolverSpec::parse("g-pr-shr:k=1.5,strategy=fix");
  EXPECT_EQ(spec.name, "g-pr-shr");
  ASSERT_EQ(spec.options.size(), 2u);
  EXPECT_EQ(spec.options[0], (std::pair<std::string, std::string>{"k", "1.5"}));
  EXPECT_EQ(spec.options[1],
            (std::pair<std::string, std::string>{"strategy", "fix"}));
}

TEST(SolverSpec, CanonicalSortsOptionsAndRoundTrips) {
  const SolverSpec spec = SolverSpec::parse("g-pr-shr:strategy=fix,k=1.5");
  EXPECT_EQ(spec.canonical(), "g-pr-shr:k=1.5,strategy=fix");
  // parse(canonical()) is a fixed point.
  EXPECT_EQ(SolverSpec::parse(spec.canonical()).canonical(), spec.canonical());
  // Two spellings of one configuration share a canonical identity.
  EXPECT_EQ(SolverSpec::parse("g-pr-shr:k=1.5,strategy=fix").canonical(),
            spec.canonical());
}

TEST(SolverSpec, ListSplitsSpecsAndContinuesOptions) {
  // The comma is both the list and the option separator: a key=val token
  // without ':' continues the previous spec.
  const auto specs =
      SolverSpec::parse_list("g-pr-shr:k=1.5,strategy=fix,hk,seq-pr:gap=0");
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].canonical(), "g-pr-shr:k=1.5,strategy=fix");
  EXPECT_EQ(specs[1].canonical(), "hk");
  EXPECT_EQ(specs[2].canonical(), "seq-pr:gap=0");
}

TEST(SolverSpec, ListOfPlainNamesStaysPlain) {
  const auto specs = SolverSpec::parse_list("g-pr-shr,g-hkdw,p-dbfs");
  ASSERT_EQ(specs.size(), 3u);
  for (const auto& spec : specs) EXPECT_TRUE(spec.options.empty());
}

TEST(SolverSpec, MalformedSpecsFailWithTheRegistryListing) {
  // Every malformed shape throws invalid_argument whose message names the
  // registered solvers (the acceptance-criterion error surface).
  for (const std::string bad :
       {"", ":k=1", "hk:", "hk:k", "hk:=1", "hk:k=1,", "hk:k=1,,gap=0",
        "k=1.5", "hk,", "hk,,pf", ",hk"}) {
    try {
      (void)SolverSpec::parse_list(bad.empty() ? "," : bad);
      (void)SolverSpec::parse(bad);
      FAIL() << "spec '" << bad << "' should have thrown";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("g-pr-shr"), std::string::npos)
          << "error for '" << bad << "' should list the registry: "
          << e.what();
    }
  }
}

TEST(SolverSpec, UnknownNameFailsWithTheRegistryListing) {
  const SolverSpec spec = SolverSpec::parse("no-such-solver:k=2");
  try {
    (void)spec.instantiate();
    FAIL() << "unknown solver should have thrown";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("no-such-solver"), std::string::npos);
    EXPECT_NE(msg.find("have:"), std::string::npos);
    EXPECT_NE(msg.find("g-pr-shr"), std::string::npos);
  }
}

TEST(SolverSpec, UnknownOptionKeyFailsNamingTheSolver) {
  try {
    (void)SolverSpec::parse("hk:k=1.5").instantiate();
    FAIL() << "hk has no options; should have thrown";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("hk"), std::string::npos);
    EXPECT_NE(msg.find("'k'"), std::string::npos);
  }
}

TEST(SolverSpec, MalformedOptionValueFailsAtInstantiate) {
  EXPECT_THROW((void)SolverSpec::parse("g-pr-shr:k=banana").instantiate(),
               std::invalid_argument);
  EXPECT_THROW(
      (void)SolverSpec::parse("g-pr-shr:strategy=sideways").instantiate(),
      std::invalid_argument);
}

TEST(SolverSpec, InstantiatedTunedSolverRunsEndToEnd) {
  const auto g = graph::gen::random_uniform(200, 210, 900, 3);
  device::Device dev({.mode = device::ExecMode::kConcurrent, .num_threads = 2});
  const SolveContext ctx{.device = &dev, .threads = 2};
  const matching::Matching init(g);

  const auto tuned = SolverSpec::parse("g-pr-shr:k=1.5").instantiate();
  const auto stock = SolverSpec::parse("hk").instantiate();
  const SolveResult a = tuned->run(ctx, g, init);
  const SolveResult b = stock->run(ctx, g, init);
  EXPECT_EQ(a.stats.cardinality, b.stats.cardinality);
  EXPECT_TRUE(a.matching.is_valid(g));
}

TEST(SolverSpec, AliasesResolveThroughSpecs) {
  EXPECT_EQ(SolverSpec::parse("g-pr").instantiate()->name(), "g-pr-shr");
  EXPECT_EQ(SolverSpec::parse("pr:k=2").instantiate()->name(), "seq-pr");
}

TEST(SolverSpec, RandomizedCanonicalRoundTripsAreFixedPoints) {
  // Property: for any spec `s` the grammar can express,
  // parse(canonical(s)) == s — same name, same option multiset, and the
  // canonical form is a fixed point of parse∘canonical.  400 random specs
  // over every registered solver name with random (possibly duplicate)
  // keys and values drawn from the grammar's alphabet.
  Rng rng(20260727);
  const std::vector<std::string> names = SolverRegistry::instance().names();
  const std::string key_chars = "abcdefghijklmnopqrstuvwxyz0123456789-";
  const std::string val_chars =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
      "0123456789.-_+";
  for (int trial = 0; trial < 400; ++trial) {
    SolverSpec spec;
    spec.name = names[rng.below(names.size())];
    const std::size_t num_options = rng.below(4);
    for (std::size_t o = 0; o < num_options; ++o) {
      std::string key, val;
      for (std::uint64_t c = 0, n = 1 + rng.below(6); c < n; ++c)
        key += key_chars[rng.below(key_chars.size())];
      for (std::uint64_t c = 0, n = 1 + rng.below(8); c < n; ++c)
        val += val_chars[rng.below(val_chars.size())];
      spec.options.emplace_back(std::move(key), std::move(val));
    }

    const std::string canon = spec.canonical();
    const SolverSpec re = SolverSpec::parse(canon);
    EXPECT_EQ(re.name, spec.name) << canon;
    EXPECT_EQ(re.canonical(), canon) << canon;  // the fixed point
    ASSERT_EQ(re.options.size(), spec.options.size()) << canon;
    // Same option multiset: canonicalisation only reorders.
    auto want = spec.options;
    auto got = re.options;
    std::stable_sort(want.begin(), want.end());
    std::stable_sort(got.begin(), got.end());
    EXPECT_EQ(got, want) << canon;

    // parse_list must treat the canonical spec as exactly one entry
    // (option continuation shares the comma with the list separator).
    const std::vector<SolverSpec> list = SolverSpec::parse_list(canon);
    ASSERT_EQ(list.size(), 1u) << canon;
    EXPECT_EQ(list[0].canonical(), canon);
  }
}

}  // namespace
}  // namespace bpm
