// policy::{InstanceFeatures, CostModel, PolicyEngine, AutoSolver}
// (src/policy/): feature determinism and permutation invariance, cost-model
// JSON round trips (byte identity — the committed table must be diffable),
// auto resolution validity across the generator pool, epsilon-greedy online
// convergence under concurrent choose/observe (TSan-stressable), and the
// resolved_from provenance seam that lets auto requests share result-cache
// entries with explicit ones.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/solver.hpp"
#include "device/device.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "matching/greedy.hpp"
#include "matching/verify.hpp"
#include "policy/auto_solver.hpp"
#include "policy/cost_model.hpp"
#include "policy/features.hpp"
#include "serve/result_cache.hpp"
#include "serve/service.hpp"

namespace bpm::policy {
namespace {

namespace gen = graph::gen;
using graph::BipartiteGraph;
using graph::index_t;

std::vector<BipartiteGraph> generator_pool() {
  std::vector<BipartiteGraph> graphs;
  graphs.push_back(gen::random_uniform(500, 520, 2600, 7));
  graphs.push_back(gen::planted_perfect(400, 2.5, 11));
  graphs.push_back(gen::chung_lu(600, 600, 4.0, 2.3, 13));
  graphs.push_back(gen::trace_mesh(200, 6, 0.05, 17));
  graphs.push_back(gen::skewed_hubs(400, 440, 6, 0.05, 2.5, 19));
  graphs.push_back(gen::rmat(9, 4.0, 23));
  graphs.push_back(gen::complete_bipartite(40, 25));
  return graphs;
}

// ------------------------------------------------------------- features ----

TEST(Features, DeterministicAndPermutationInvariant) {
  // Every field is a function of the graph structure; all but hub_mass are
  // exactly invariant under vertex relabeling (hub_mass moves with the
  // balanced-partition boundaries — a contiguous hub block concentrates
  // mass a scattered one spreads — so it gets a generous tolerance).  The init
  // cardinality is held fixed across permutations so deficiency_est
  // compares like with like.
  for (const BipartiteGraph& g : generator_pool()) {
    const index_t init = matching::cheap_matching(g).cardinality();
    const InstanceFeatures base = compute_features(g, init);
    const InstanceFeatures again = compute_features(g, init);
    EXPECT_EQ(base.rows, again.rows);
    EXPECT_DOUBLE_EQ(base.hub_mass, again.hub_mass);  // determinism
    EXPECT_EQ(base.rows, g.num_rows());
    EXPECT_EQ(base.cols, g.num_cols());
    EXPECT_EQ(base.edges, g.num_edges());
    EXPECT_GE(base.deficiency_est, 0.0);
    EXPECT_LE(base.deficiency_est, 1.0);
    EXPECT_GE(base.hub_mass, 0.0);
    EXPECT_LE(base.hub_mass, 1.0);
    if (g.num_edges() > 0) EXPECT_GE(base.degree_skew, 1.0);

    for (std::uint64_t perm_seed = 1; perm_seed <= 3; ++perm_seed) {
      const InstanceFeatures p =
          compute_features(graph::permute_vertices(g, perm_seed), init);
      EXPECT_EQ(p.rows, base.rows);
      EXPECT_EQ(p.cols, base.cols);
      EXPECT_EQ(p.edges, base.edges);
      EXPECT_DOUBLE_EQ(p.density, base.density);
      EXPECT_DOUBLE_EQ(p.avg_degree, base.avg_degree);
      EXPECT_DOUBLE_EQ(p.degree_skew, base.degree_skew);
      EXPECT_DOUBLE_EQ(p.deficiency_est, base.deficiency_est);
      EXPECT_NEAR(p.hub_mass, base.hub_mass, 0.35) << "perm " << perm_seed;
    }
  }
}

TEST(Features, BucketKeyRoundTripsAndDistanceIsAMetricAxisWeight) {
  const BucketId b{.size = 4, .degree = 2, .skew = 1, .deficiency = 2};
  EXPECT_EQ(b.key(), "s4.d2.k1.f2");
  BucketId parsed;
  ASSERT_TRUE(BucketId::parse(b.key(), parsed));
  EXPECT_EQ(parsed, b);
  for (const std::string& bad :
       {"", "s4.d2.k1", "s4.d2.k1.f2.x9", "sA.d2.k1.f2", "4.2.1.2"}) {
    BucketId out;
    EXPECT_FALSE(BucketId::parse(bad, out)) << bad;
  }
  EXPECT_EQ(b.distance(b), 0);
  // Size is the cheapest axis to cross; degree and skew the dearest.
  const BucketId size_off{.size = 5, .degree = 2, .skew = 1, .deficiency = 2};
  const BucketId skew_off{.size = 4, .degree = 2, .skew = 2, .deficiency = 2};
  EXPECT_LT(b.distance(size_off), b.distance(skew_off));
}

// ----------------------------------------------------------- cost model ----

TEST(CostModel, JsonRoundTripIsByteIdentical) {
  CostModel m;
  m.record("s4.d2.k1.f2", "hk", 1.25);
  m.record("s4.d2.k1.f2", "hk", 0.75);  // running mean -> 1.0
  m.record("s4.d2.k1.f2", "g-pr-shr:k=1.5", 3.0e-7);
  m.record("s7.d0.k0.f0", "seq-pr", 12345.678901234567);
  const std::string once = m.to_json();
  const CostModel reparsed = CostModel::from_json(once);
  EXPECT_EQ(reparsed.to_json(), once);
  ASSERT_NE(reparsed.find("s4.d2.k1.f2"), nullptr);
  const CostEntry& hk = reparsed.find("s4.d2.k1.f2")->at("hk");
  EXPECT_DOUBLE_EQ(hk.us_per_edge, 1.0);
  EXPECT_EQ(hk.samples, 2);

  // The committed embedded table round-trips the same way — this is what
  // keeps `policy_calibrate --emit-inc` output diffable.
  const CostModel& dflt = CostModel::embedded_default();
  ASSERT_FALSE(dflt.empty());
  EXPECT_EQ(CostModel::from_json(dflt.to_json()).to_json(), dflt.to_json());

  EXPECT_THROW((void)CostModel::from_json("not json"), std::invalid_argument);
  EXPECT_THROW((void)CostModel::from_json("{\"buckets\": [}"),
               std::invalid_argument);
}

TEST(CostModel, NearestBucketFallbackIsDeterministic) {
  CostModel m;
  m.record("s4.d2.k1.f2", "hk", 1.0);
  m.record("s8.d0.k0.f0", "seq-pr", 2.0);
  // Exact hit.
  const auto* exact = m.lookup({.size = 4, .degree = 2, .skew = 1,
                                .deficiency = 2});
  ASSERT_NE(exact, nullptr);
  EXPECT_TRUE(exact->count("hk"));
  // A bucket near the first cell falls back to it, not the far one.
  const auto* near = m.lookup({.size = 5, .degree = 2, .skew = 1,
                               .deficiency = 2});
  ASSERT_NE(near, nullptr);
  EXPECT_TRUE(near->count("hk"));
  EXPECT_EQ(CostModel{}.lookup({}), nullptr);
}

// ---------------------------------------------------------- auto solver ----

TEST(AutoSolver, ResolvesToAValidRegisteredSpecEverywhere) {
  // Whatever the features, resolution must land on a registered,
  // instantiable, exact spec — and running the resolved solver must give
  // the true maximum cardinality.
  ASSERT_TRUE(SolverRegistry::instance().contains("auto"));
  const AutoSolver solver;
  device::Device dev({.mode = device::ExecMode::kConcurrent,
                      .num_threads = 2});
  for (const BipartiteGraph& g : generator_pool()) {
    const matching::Matching init = matching::cheap_matching(g);
    const InstanceFeatures f = compute_features(g, init.cardinality());
    const AutoSolver::Resolved r = solver.resolve(f);
    EXPECT_NE(r.spec.name, "auto");
    EXPECT_EQ(r.spec.resolved_from, "auto");
    ASSERT_NE(r.solver, nullptr);
    EXPECT_TRUE(SolverRegistry::instance().contains(r.spec.name))
        << r.spec.canonical();

    const SolveContext ctx{.device = &dev, .threads = 2};
    const SolveResult out = solver.run(ctx, g, init);
    const index_t truth = matching::reference_maximum_cardinality(g);
    EXPECT_EQ(out.stats.cardinality, truth);
    EXPECT_TRUE(matching::is_maximum(g, out.matching));
    // The choice is reported in the stats detail ("auto -> <spec> ...").
    EXPECT_EQ(out.stats.detail.rfind("auto -> ", 0), 0u) << out.stats.detail;
  }
}

TEST(AutoSolver, OptionValidation) {
  const auto spec = SolverSpec::parse("auto:explore=0.25");
  EXPECT_NE(spec.instantiate(), nullptr);
  AutoSolver s;
  EXPECT_TRUE(s.set_option("explore", "0.5"));
  EXPECT_DOUBLE_EQ(s.explore(), 0.5);
  EXPECT_THROW((void)s.set_option("explore", "1.5"), std::invalid_argument);
  EXPECT_THROW((void)s.set_option("explore", "nope"), std::invalid_argument);
  EXPECT_THROW((void)s.set_option("model", "/no/such/model.json"),
               std::runtime_error);
  EXPECT_FALSE(s.set_option("unknown-key", "x"));
}

TEST(PolicyEngine, EpsilonGreedyConvergesOnTheTrulyFastSolver) {
  // Plant a model whose table favours "pf" (0.5 us/edge vs hk's 1.0), but
  // make the *measured* truth the opposite: hk is 10x faster.  Concurrent
  // choose/observe workers with explore=0.2 must re-measure both arms and
  // flip the favourite — online estimates outrank the table once sampled.
  // Under TSan this doubles as the engine's race stress.
  InstanceFeatures f;
  f.rows = f.cols = 4096;
  f.edges = 1 << 15;
  f.density = static_cast<double>(f.edges) /
              (static_cast<double>(f.rows) * static_cast<double>(f.cols));
  f.avg_degree = 8.0;
  f.degree_skew = 1.5;
  f.deficiency_est = 0.01;
  const std::string bucket = bucket_of(f).key();

  CostModel planted;
  planted.record(bucket, "hk", 1.0);
  planted.record(bucket, "pf", 0.5);  // the table's (wrong) favourite
  PolicyEngine engine(planted);

  const auto truth_ms = [&](const std::string& spec) {
    const double us_per_edge = spec == "hk" ? 0.1 : 1.0;
    return us_per_edge * static_cast<double>(f.edges) / 1000.0;
  };

  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        const PolicyEngine::Choice c = engine.choose(f, 0.2);
        EXPECT_EQ(c.bucket, bucket);
        engine.observe(f, c.spec.canonical(), truth_ms(c.spec.canonical()));
      }
    });
  }
  for (std::thread& t : workers) t.join();

  // Exploitation now picks the measured winner, not the table's.
  const PolicyEngine::Choice final_choice = engine.choose(f, 0.0);
  EXPECT_EQ(final_choice.spec.canonical(), "hk");
  EXPECT_TRUE(final_choice.from_online);
  EXPECT_FALSE(final_choice.explored);

  // Both arms were actually measured (explore kept the loser fresh).
  const auto online = engine.online_snapshot();
  ASSERT_EQ(online.size(), 2u);
  for (const auto& e : online) {
    EXPECT_EQ(e.bucket, bucket);
    EXPECT_GT(e.samples, 0);
  }
  engine.reset_online();
  EXPECT_TRUE(engine.online_snapshot().empty());
}

TEST(PolicyEngine, FallsBackToTheExactPoolOnAnEmptyModel) {
  PolicyEngine engine{CostModel{}};
  InstanceFeatures f;
  f.rows = f.cols = 100;
  f.edges = 500;
  const PolicyEngine::Choice c = engine.choose(f, 0.0);
  EXPECT_TRUE(c.fallback);
  const auto& pool = PolicyEngine::fallback_pool();
  EXPECT_NE(std::find(pool.begin(), pool.end(), c.spec.canonical()),
            pool.end());
  for (const std::string& name : pool)
    EXPECT_NE(SolverRegistry::instance().create(
                  SolverSpec::parse(name).name), nullptr) << name;
}

// ------------------------------------------------- cache-sharing seam ------

TEST(SolverSpec, ResolvedFromIsProvenanceNotIdentity) {
  SolverSpec spec = SolverSpec::parse("hk");
  const std::string plain = spec.canonical();
  spec.resolved_from = "auto";
  EXPECT_EQ(spec.canonical(), plain);
}

TEST(Service, AutoSharesResultCacheEntriesWithExplicitRequests) {
  // Pin the global engine to a model whose only candidate is "hk", so auto
  // deterministically resolves to it; an explicit hk solve must then serve
  // the subsequent auto request straight from the result cache — the whole
  // point of excluding resolved_from from the cache key.
  PolicyEngine& engine = PolicyEngine::global();
  const CostModel saved = engine.model_snapshot();
  engine.reset_online();

  const auto g = gen::random_uniform(300, 310, 1500, 11);
  const index_t init = matching::cheap_matching(g).cardinality();
  CostModel pinned;
  pinned.record(bucket_of(compute_features(g, init)).key(), "hk", 1.0);
  engine.set_model(pinned);

  serve::MatchingService svc(
      {.workers = 1, .cache = std::make_shared<serve::ResultCache>()});
  const auto handle = svc.add_instance("g", g).handle;
  const auto submit = [&](const std::string& spec) {
    serve::Submission sub = svc.submit(
        {.instance = handle, .spec = SolverSpec::parse(spec)});
    EXPECT_TRUE(sub.accepted) << sub.reason;
    return sub.future.get();
  };

  const serve::Response direct = submit("hk");
  EXPECT_TRUE(direct.ok) << direct.error;
  EXPECT_FALSE(direct.cached);
  EXPECT_EQ(direct.solver, "hk");
  EXPECT_TRUE(direct.resolved_from.empty());

  const serve::Response via_auto = submit("auto:explore=0");
  EXPECT_TRUE(via_auto.ok) << via_auto.error;
  EXPECT_TRUE(via_auto.cached);  // the seam under test
  EXPECT_EQ(via_auto.solver, "hk");
  EXPECT_EQ(via_auto.resolved_from, "auto:explore=0");
  EXPECT_EQ(via_auto.stats.cardinality, direct.stats.cardinality);

  engine.set_model(saved);
  engine.reset_online();
}

}  // namespace
}  // namespace bpm::policy
