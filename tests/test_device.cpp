#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "device/device.hpp"
#include "device/mem.hpp"
#include "device/scan.hpp"
#include "device/thread_pool.hpp"

namespace bpm::device {
namespace {

// ------------------------------------------------------------ ThreadPool ----

TEST(ThreadPool, RunsJobOnEveryWorker) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(4);
  pool.run_on_all([&](unsigned id) { hits[id].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int i = 0; i < 200; ++i)
    pool.run_on_all([&](unsigned) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 600);
}

TEST(ThreadPool, JoinPublishesWorkerWrites) {
  ThreadPool pool(4);
  std::vector<int> data(4, 0);  // plain ints: join must order the writes
  pool.run_on_all([&](unsigned id) { data[id] = static_cast<int>(id) + 1; });
  EXPECT_EQ(data, (std::vector<int>{1, 2, 3, 4}));
}

TEST(ThreadPool, DefaultSizeIsHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, RunTasksCoversEverySlotExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(17);
  pool.run_tasks(17, [&](unsigned slot) { hits[slot].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ConcurrentBatchesFromManyStreamsAllComplete) {
  // The stream scenario: several host threads submit batches to one pool
  // at once; every batch's slots must run exactly once and every caller
  // must see its own batch's writes after the join.
  ThreadPool pool(4);
  constexpr int kStreams = 6, kLaunches = 50, kSlots = 8;
  std::vector<std::thread> streams;
  std::vector<std::atomic<int>> totals(kStreams);
  for (int s = 0; s < kStreams; ++s)
    streams.emplace_back([&, s] {
      for (int l = 0; l < kLaunches; ++l) {
        std::vector<int> hits(kSlots, 0);  // plain ints: join orders writes
        pool.run_tasks(kSlots, [&](unsigned slot) { hits[slot] += 1; });
        int sum = 0;
        for (int h : hits) sum += h;
        totals[s].fetch_add(sum);
      }
    });
  for (auto& t : streams) t.join();
  for (auto& total : totals) EXPECT_EQ(total.load(), kLaunches * kSlots);
}

// ---------------------------------------------------------------- Device ----

class DeviceModes : public ::testing::TestWithParam<ExecMode> {};

TEST_P(DeviceModes, LaunchCoversEveryIndexExactlyOnce) {
  Device dev({.mode = GetParam(), .num_threads = 4});
  std::vector<std::atomic<int>> hits(1000);
  dev.launch(1000, [&](std::int64_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_P(DeviceModes, LaunchCountsLaunches) {
  Device dev({.mode = GetParam(), .num_threads = 2});
  EXPECT_EQ(dev.launches(), 0u);
  dev.launch(10, [](std::int64_t) {});
  dev.launch(0, [](std::int64_t) {});  // empty grids still count
  EXPECT_EQ(dev.launches(), 2u);
  dev.reset_launch_count();
  EXPECT_EQ(dev.launches(), 0u);
}

TEST_P(DeviceModes, LaunchChunkedPartitionsRange) {
  Device dev({.mode = GetParam(), .num_threads = 3});
  std::vector<std::atomic<int>> hits(100);
  dev.launch_chunked(100, [&](unsigned, std::int64_t begin, std::int64_t end) {
    for (std::int64_t i = begin; i < end; ++i)
      hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_P(DeviceModes, LaunchBarrierPublishesWrites) {
  Device dev({.mode = GetParam(), .num_threads = 4});
  std::vector<int> data(257, 0);
  dev.launch(257, [&](std::int64_t i) { data[static_cast<std::size_t>(i)] = 1; });
  EXPECT_EQ(std::accumulate(data.begin(), data.end(), 0), 257);
}

TEST_P(DeviceModes, SmallGridsWithManyWorkers) {
  // n < workers: chunking must not duplicate or drop indices.
  Device dev({.mode = GetParam(), .num_threads = 8});
  std::vector<std::atomic<int>> hits(3);
  dev.launch(3, [&](std::int64_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

INSTANTIATE_TEST_SUITE_P(AllModes, DeviceModes,
                         ::testing::Values(ExecMode::kSequential,
                                           ExecMode::kConcurrent),
                         [](const auto& param_info) {
                           return param_info.param == ExecMode::kSequential
                                      ? "Sequential"
                                      : "Concurrent";
                         });

TEST(Device, SequentialModeRunsInOrder) {
  Device dev({.mode = ExecMode::kSequential});
  std::vector<std::int64_t> order;
  dev.launch(10, [&](std::int64_t i) { order.push_back(i); });
  for (std::int64_t i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

// -------------------------------------------------------------- streams ----

TEST(Device, StreamsShareOneEngineButKeepTheirOwnStats) {
  // Pinned to sim: the EXPECT_NEARs below check the cost model's exact
  // charges, which the host backend replaces with measured wall time.
  const auto engine = std::make_shared<Engine>(EngineDescriptor{
      .backend = Backend::kSim, .mode = ExecMode::kConcurrent, .threads = 4});
  Device a(engine), b(engine);
  EXPECT_EQ(a.engine().get(), b.engine().get());
  EXPECT_EQ(a.num_workers(), 4u);

  a.launch(100, [](std::int64_t) {});
  a.launch(100, [](std::int64_t) {});
  b.launch_accounted(100, [](std::int64_t) -> std::int64_t { return 3; });
  EXPECT_EQ(a.launches(), 2u);
  EXPECT_EQ(b.launches(), 1u);
  // Each stream models only its own launches: a has 2 latency + item
  // terms and no work; b has 1 plus its work term.  100 threads on a
  // 448-lane device leave lanes idle, so the straggler critical path
  // (lanes · max lane work = 448 · 3) is what gets charged, not the 300
  // total work units.
  const DeviceModel m;
  const double item_ms = 100 * m.ns_per_item * 1e-6;
  EXPECT_NEAR(a.modeled_ms(), 2 * (m.launch_latency_us / 1e3 + item_ms), 1e-9);
  EXPECT_NEAR(b.modeled_ms(),
              m.launch_latency_us / 1e3 + item_ms +
                  static_cast<double>(m.lanes) * 3 * m.ns_per_work * 1e-6,
              1e-9);
}

TEST(Device, ConcurrentStreamsRunConcurrentLaunchesCorrectly) {
  // N streams on one engine, each launching from its own host thread —
  // the pipeline's execution shape.  Every stream's grids must each cover
  // their index space exactly once and count their own launches.
  const auto engine = std::make_shared<Engine>(ExecMode::kConcurrent, 4);
  constexpr int kStreams = 4, kLaunches = 25;
  constexpr std::int64_t kGrid = 512;
  std::vector<std::thread> threads;
  std::vector<std::uint64_t> launches(kStreams, 0);
  std::vector<std::int64_t> covered(kStreams, 0);
  for (int s = 0; s < kStreams; ++s)
    threads.emplace_back([&, s] {
      Device stream(engine);
      std::vector<std::atomic<int>> hits(kGrid);
      for (int l = 0; l < kLaunches; ++l) {
        for (auto& h : hits) h.store(0);
        stream.launch(kGrid, [&](std::int64_t i) {
          hits[static_cast<std::size_t>(i)].fetch_add(1);
        });
        for (auto& h : hits) covered[static_cast<std::size_t>(s)] += h.load();
      }
      launches[static_cast<std::size_t>(s)] = stream.launches();
    });
  for (auto& t : threads) t.join();
  for (int s = 0; s < kStreams; ++s) {
    EXPECT_EQ(launches[static_cast<std::size_t>(s)],
              static_cast<std::uint64_t>(kLaunches));
    EXPECT_EQ(covered[static_cast<std::size_t>(s)], kLaunches * kGrid);
  }
}

TEST(Device, StreamsOnASequentialEngineStayOrdered) {
  const auto engine = std::make_shared<Engine>(ExecMode::kSequential);
  Device stream(engine);
  EXPECT_EQ(stream.num_workers(), 1u);
  std::vector<std::int64_t> order;
  stream.launch(5, [&](std::int64_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::int64_t>{0, 1, 2, 3, 4}));
}

// ------------------------------------------------------------------- mem ----

TEST(Mem, RelaxedCellLoadStore) {
  relaxed_cell<std::int32_t> c(5);
  EXPECT_EQ(c.load(), 5);
  c.store(-2);
  EXPECT_EQ(c.load(), -2);
  EXPECT_EQ(c.load_seq_cst(), -2);
}

TEST(Mem, RelaxedVectorBulkOps) {
  relaxed_vector<std::int32_t> v(4, 7);
  EXPECT_EQ(v.size(), 4u);
  EXPECT_EQ(v.load(2), 7);
  v.store(2, 9);
  EXPECT_EQ(v.load(2), 9);
  v.fill(1);
  EXPECT_EQ(v.to_host(), (std::vector<std::int32_t>{1, 1, 1, 1}));
  v.assign_from({3, 2, 1});
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v.load(0), 3);
}

TEST(Mem, RelaxedVectorSwapIsConstantTimeExchange) {
  relaxed_vector<std::int32_t> a(2, 1), b(3, 2);
  a.swap(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(a.load(0), 2);
  EXPECT_EQ(b.load(0), 1);
}

TEST(Mem, DeviceFlagRaiseFromKernel) {
  Device dev({.mode = ExecMode::kConcurrent, .num_threads = 4});
  device_flag flag;
  EXPECT_FALSE(flag.is_raised());
  dev.launch(100, [&](std::int64_t i) {
    if (i == 37) flag.raise();
  });
  EXPECT_TRUE(flag.is_raised());
  flag.reset();
  EXPECT_FALSE(flag.is_raised());
}

TEST(Mem, ConcurrentSameValueWritesAreBenign) {
  // The G-GR pattern: many threads store the same value to one cell.
  Device dev({.mode = ExecMode::kConcurrent, .num_threads = 8});
  relaxed_vector<std::int32_t> cell(1, 0);
  dev.launch(10000, [&](std::int64_t) { cell.store(0, 42); });
  EXPECT_EQ(cell.load(0), 42);
}

TEST(Mem, ConcurrentLastWriterWinsSettlesOnSomeWrittenValue) {
  // The µ(u) pattern: racing writes of different values; after the launch
  // barrier the cell holds one of them.
  Device dev({.mode = ExecMode::kConcurrent, .num_threads = 8});
  relaxed_vector<std::int32_t> cell(1, -1);
  dev.launch(64, [&](std::int64_t i) {
    cell.store(0, static_cast<std::int32_t>(i));
  });
  const auto v = cell.load(0);
  EXPECT_GE(v, 0);
  EXPECT_LT(v, 64);
}

// ------------------------------------------------------- balanced launch ----

// Deterministic pseudo-random degree sequence with a few planted hubs —
// the skewed shape balanced partitioning exists for.
std::vector<std::int64_t> skewed_degrees(std::size_t n, std::uint64_t seed) {
  std::vector<std::int64_t> work(n);
  std::uint64_t x = seed * 2654435761u + 1;
  for (auto& w : work) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    w = static_cast<std::int64_t>(x % 7);
    if (x % 97 == 0) w = 500 + static_cast<std::int64_t>(x % 400);  // hub
  }
  return work;
}

std::vector<std::int64_t> offsets_of(const std::vector<std::int64_t>& work) {
  std::vector<std::int64_t> offsets(work.size() + 1, 0);
  for (std::size_t i = 0; i < work.size(); ++i)
    offsets[i + 1] = offsets[i] + work[i];
  return offsets;
}

TEST(BalancedPartition, CoversEveryItemExactlyOnceAcrossShapes) {
  for (const std::size_t n : {1u, 2u, 7u, 64u, 1000u, 4097u}) {
    const auto offsets = offsets_of(skewed_degrees(n, n));
    for (const std::int64_t parts : {1, 2, 3, 7, 16, 448}) {
      const auto bounds = balanced_partition(offsets, parts);
      ASSERT_EQ(bounds.size(), static_cast<std::size_t>(parts) + 1);
      EXPECT_EQ(bounds.front(), 0);
      EXPECT_EQ(bounds.back(), static_cast<std::int64_t>(n));
      // Monotone boundaries partition [0, n): every item in exactly one
      // chunk, which is the "every edge covered exactly once" property —
      // chunks own disjoint, contiguous, exhaustive item (and hence CSR
      // edge-range) sets.
      for (std::size_t p = 1; p < bounds.size(); ++p)
        EXPECT_LE(bounds[p - 1], bounds[p]) << "n=" << n << " parts=" << parts;
    }
  }
}

TEST(BalancedPartition, ChunkWorkWithinOneMaxDegreeOfIdeal) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const auto work = skewed_degrees(3000, seed);
    const auto offsets = offsets_of(work);
    const std::int64_t max_degree =
        *std::max_element(work.begin(), work.end());
    for (const std::int64_t parts : {2, 8, 64, 448}) {
      const auto bounds = balanced_partition(offsets, parts);
      const std::int64_t ideal = offsets.back() / parts;
      for (std::int64_t p = 0; p < parts; ++p) {
        const std::int64_t chunk_work =
            offsets[static_cast<std::size_t>(bounds[p + 1])] -
            offsets[static_cast<std::size_t>(bounds[p])];
        EXPECT_LE(chunk_work, ideal + max_degree + 1)
            << "seed=" << seed << " parts=" << parts << " chunk=" << p;
      }
    }
  }
}

TEST(BalancedPartition, DegenerateInputs) {
  // All-zero work: any boundaries partitioning [0, n) are acceptable.
  const std::vector<std::int64_t> zeros(5, 0);
  const auto bounds = balanced_partition(offsets_of(zeros), 3);
  EXPECT_EQ(bounds.front(), 0);
  EXPECT_EQ(bounds.back(), 5);
  for (std::size_t p = 1; p < bounds.size(); ++p)
    EXPECT_LE(bounds[p - 1], bounds[p]);
  // Contract violations throw.
  EXPECT_THROW(balanced_partition({}, 2), std::invalid_argument);
  const std::vector<std::int64_t> not_prefix{3, 5};
  EXPECT_THROW(balanced_partition(not_prefix, 2), std::invalid_argument);
  const std::vector<std::int64_t> ok{0, 3};
  EXPECT_THROW(balanced_partition(ok, 0), std::invalid_argument);
}

TEST(BalancedPartition, LeadingChunksNeverEmptyWhileWorkRemains) {
  // Regression (sharding): floor targets used to hand chunk 0 an empty
  // range when an all-zero-degree tail (or total < parts) dragged the
  // average below 1 — an empty *leading* shard while later shards held
  // all the work.  Ceil targets keep every leading chunk non-empty until
  // the items run out.
  const std::vector<std::int64_t> tail_zeros{3, 2, 0, 0, 0, 0, 0, 0};
  const auto bounds = balanced_partition(offsets_of(tail_zeros), 4);
  EXPECT_GT(bounds[1], 0) << "leading chunk must own at least one item";
  // All work (5 units over items 0-1) is covered exactly once.
  EXPECT_EQ(bounds.front(), 0);
  EXPECT_EQ(bounds.back(), 8);
}

TEST(BalancedPartition, MorePartsThanNonEmptyItemsDegradesGracefully) {
  // 2 non-empty items, 8 parts: items are indivisible, so at most 2
  // chunks can carry work (no work duplicated into padding chunks), the
  // cover stays exact, and the leading chunk still owns the first item.
  const std::vector<std::int64_t> two{7, 0, 0, 5, 0};
  const auto offsets = offsets_of(two);
  const auto bounds = balanced_partition(offsets, 8);
  ASSERT_EQ(bounds.size(), 9u);
  EXPECT_EQ(bounds.front(), 0);
  EXPECT_EQ(bounds.back(), 5);
  EXPECT_GT(bounds[1], 0);
  int chunks_with_work = 0;
  std::int64_t total_work = 0;
  for (std::size_t p = 0; p < 8; ++p) {
    EXPECT_LE(bounds[p], bounds[p + 1]);
    const std::int64_t work =
        offsets[static_cast<std::size_t>(bounds[p + 1])] -
        offsets[static_cast<std::size_t>(bounds[p])];
    chunks_with_work += work > 0 ? 1 : 0;
    total_work += work;
  }
  EXPECT_EQ(chunks_with_work, 2);
  EXPECT_EQ(total_work, offsets.back());
}

TEST(BalancedPartition, ZeroTotalWorkSpreadsItemsEvenly) {
  // No work at all: chunks still partition the items (±1) so downstream
  // per-chunk loops see bounded ranges instead of one chunk owning all n.
  const std::vector<std::int64_t> zeros(10, 0);
  const auto bounds = balanced_partition(offsets_of(zeros), 4);
  for (std::size_t p = 0; p < 4; ++p) {
    const std::int64_t items = bounds[p + 1] - bounds[p];
    EXPECT_GE(items, 2);
    EXPECT_LE(items, 3);
  }
}

// ------------------------------------------------------- EngineArena ----

TEST(Mem, EngineArenaFirstTouchConstructsEveryCell) {
  const auto engine = std::make_shared<Engine>(
      EngineDescriptor{.backend = Backend::kHost,
                       .mode = ExecMode::kConcurrent,
                       .threads = 4});
  const EngineArena arena(engine);
  // Big enough to fan out over several 16 KiB first-touch chunks.
  const std::size_t n = 3 * 16384 / sizeof(relaxed_cell<std::int64_t>) + 7;
  const relaxed_vector<std::int64_t> v = arena.make<std::int64_t>(n, 42);
  ASSERT_EQ(v.size(), n);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(v.load(i), 42);
}

TEST(Mem, EngineArenaPartialRangesComposeIntoFullCoverage) {
  // Interleaved block construction — the sharded solve's pattern for the
  // shared row-side arrays (K even blocks, one per arena).
  const auto engine = std::make_shared<Engine>(
      EngineDescriptor{.backend = Backend::kHost, .threads = 2});
  const EngineArena arena(engine);
  relaxed_vector<int> v(uninitialized, 1000);
  arena.first_touch(v, 500, 1000, 2);
  arena.first_touch(v, 0, 500, 1);
  for (std::size_t i = 0; i < 1000; ++i)
    ASSERT_EQ(v.load(i), i < 500 ? 1 : 2);
}

TEST(Mem, EngineArenaWithoutEngineRunsInline) {
  const EngineArena arena(nullptr);
  const relaxed_vector<int> v = arena.make<int>(100, 7);
  for (std::size_t i = 0; i < 100; ++i) ASSERT_EQ(v.load(i), 7);
}

TEST(Device, NumaTopologyIsWellFormed) {
  // Shape-only sanity: at least one node, every node non-empty, CPU ids
  // distinct across nodes (this box may well be single-node).
  const auto topo = numa_topology();
  ASSERT_GE(topo.size(), 1u);
  std::vector<int> seen;
  for (const auto& node : topo) {
    EXPECT_FALSE(node.empty());
    for (const int cpu : node) {
      EXPECT_GE(cpu, 0);
      seen.push_back(cpu);
    }
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

class BalancedLaunchModes : public ::testing::TestWithParam<ExecMode> {};

TEST_P(BalancedLaunchModes, RunsEveryItemExactlyOnce) {
  Device dev({.mode = GetParam(), .num_threads = 4});
  for (const std::size_t n : {1u, 3u, 57u, 1000u}) {
    const auto offsets = offsets_of(skewed_degrees(n, 11));
    std::vector<std::atomic<int>> hits(n);
    dev.launch_balanced(offsets, [&](std::int64_t i) -> std::int64_t {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
      return 1;
    });
    for (auto& h : hits) EXPECT_EQ(h.load(), 1) << "n=" << n;
  }
}

TEST_P(BalancedLaunchModes, EmptyAndZeroWorkGrids) {
  Device dev({.mode = GetParam(), .num_threads = 4});
  const std::vector<std::int64_t> empty{0};
  dev.launch_balanced(empty, [](std::int64_t) -> std::int64_t { return 1; });
  EXPECT_EQ(dev.launches(), 1u);  // empty grids still count as a launch
  // All-zero work estimates: every item still runs exactly once.
  const std::vector<std::int64_t> zeros(8, 0);
  std::vector<std::atomic<int>> hits(7);
  dev.launch_balanced(zeros, [&](std::int64_t i) -> std::int64_t {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
    return 0;
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

INSTANTIATE_TEST_SUITE_P(AllModes, BalancedLaunchModes,
                         ::testing::Values(ExecMode::kSequential,
                                           ExecMode::kConcurrent),
                         [](const auto& param_info) {
                           return param_info.param == ExecMode::kSequential
                                      ? "Sequential"
                                      : "Concurrent";
                         });

TEST(BalancedLaunch, ModelsBalancedGridBelowVertexParallelOnSkew) {
  // The same skewed work on the same engine: the edge-balanced launch
  // must model a shorter critical path than the contiguous-item grid,
  // and both must model identically across execution modes.  The shape is
  // a crawl-ordered hub block — many medium-degree items clustered in id
  // space, each well below the per-lane ideal — which is the regime
  // item-aligned edge balancing can improve (one item whose work exceeds
  // the ideal chunk bounds both schedules equally).
  std::vector<std::int64_t> work(4480, 1);
  for (std::size_t i = 0; i < 448; ++i) work[i] = 100;  // the hub block
  const auto offsets = offsets_of(work);
  auto modeled = [&](bool balanced, ExecMode mode) {
    // Pinned to sim: this test compares *modeled* schedules.
    Device dev({.backend = Backend::kSim, .mode = mode, .num_threads = 4});
    const auto kernel = [&](std::int64_t i) -> std::int64_t {
      return work[static_cast<std::size_t>(i)];
    };
    if (balanced)
      dev.launch_balanced(offsets, kernel);
    else
      dev.launch_accounted(static_cast<std::int64_t>(work.size()), kernel);
    return dev.modeled_ms();
  };
  const double vertex = modeled(false, ExecMode::kConcurrent);
  const double balanced = modeled(true, ExecMode::kConcurrent);
  EXPECT_LT(balanced, vertex);
  EXPECT_DOUBLE_EQ(vertex, modeled(false, ExecMode::kSequential));
  EXPECT_DOUBLE_EQ(balanced, modeled(true, ExecMode::kSequential));
}

TEST(BalancedLaunch, ConcurrentStreamsStressAllCovered) {
  // TSan stress for the balanced launch and its padded per-chunk lane
  // tallies: several streams on one engine, each running balanced
  // launches over skewed work from its own host thread.
  const auto engine = std::make_shared<Engine>(ExecMode::kConcurrent, 4);
  constexpr int kStreams = 4, kLaunches = 20;
  constexpr std::size_t kGrid = 700;
  std::vector<std::thread> threads;
  std::vector<std::int64_t> covered(kStreams, 0);
  for (int s = 0; s < kStreams; ++s)
    threads.emplace_back([&, s] {
      Device stream(engine);
      const auto offsets =
          offsets_of(skewed_degrees(kGrid, static_cast<std::uint64_t>(s)));
      std::vector<std::atomic<int>> hits(kGrid);
      for (int l = 0; l < kLaunches; ++l) {
        for (auto& h : hits) h.store(0);
        stream.launch_balanced(offsets, [&](std::int64_t i) -> std::int64_t {
          hits[static_cast<std::size_t>(i)].fetch_add(1);
          return 1;
        });
        for (auto& h : hits) covered[static_cast<std::size_t>(s)] += h.load();
      }
    });
  for (auto& t : threads) t.join();
  for (int s = 0; s < kStreams; ++s)
    EXPECT_EQ(covered[static_cast<std::size_t>(s)],
              static_cast<std::int64_t>(kLaunches * kGrid));
}

// ------------------------------------------------------------------ scan ----

class ScanModes : public ::testing::TestWithParam<ExecMode> {};

TEST_P(ScanModes, MatchesSerialExclusiveScan) {
  Device dev({.mode = GetParam(), .num_threads = 4});
  for (std::size_t n : {0u, 1u, 2u, 7u, 64u, 1000u, 4097u}) {
    std::vector<std::int64_t> in(n);
    for (std::size_t i = 0; i < n; ++i)
      in[i] = static_cast<std::int64_t>((i * 2654435761u) % 17);
    std::vector<std::int64_t> expect(n, 0);
    std::int64_t acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      expect[i] = acc;
      acc += in[i];
    }
    std::vector<std::int64_t> out(n);
    const std::int64_t total = exclusive_scan(dev, in, out);
    EXPECT_EQ(total, acc) << "n=" << n;
    EXPECT_EQ(out, expect) << "n=" << n;
  }
}

TEST_P(ScanModes, InPlaceAliasing) {
  Device dev({.mode = GetParam(), .num_threads = 4});
  std::vector<std::int64_t> data{3, 1, 4, 1, 5};
  const std::int64_t total = exclusive_scan(dev, data, data);
  EXPECT_EQ(total, 14);
  EXPECT_EQ(data, (std::vector<std::int64_t>{0, 3, 4, 8, 9}));
}

TEST_P(ScanModes, ReduceSumMatchesAccumulate) {
  Device dev({.mode = GetParam(), .num_threads = 4});
  std::vector<std::int64_t> in(999);
  for (std::size_t i = 0; i < in.size(); ++i)
    in[i] = static_cast<std::int64_t>(i % 13) - 6;
  EXPECT_EQ(reduce_sum(dev, in),
            std::accumulate(in.begin(), in.end(), std::int64_t{0}));
  EXPECT_EQ(reduce_sum(dev, std::vector<std::int64_t>{}), 0);
}

INSTANTIATE_TEST_SUITE_P(AllModes, ScanModes,
                         ::testing::Values(ExecMode::kSequential,
                                           ExecMode::kConcurrent),
                         [](const auto& param_info) {
                           return param_info.param == ExecMode::kSequential
                                      ? "Sequential"
                                      : "Concurrent";
                         });

TEST(Scan, SizeMismatchThrows) {
  Device dev({.mode = ExecMode::kSequential});
  std::vector<std::int64_t> in{1, 2};
  std::vector<std::int64_t> out(3);
  EXPECT_THROW(exclusive_scan(dev, in, out), std::invalid_argument);
}

}  // namespace
}  // namespace bpm::device
