#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "matching/greedy.hpp"
#include "matching/verify.hpp"
#include "multicore/pdbfs.hpp"

namespace bpm::mc {
namespace {

using graph::BipartiteGraph;
using graph::index_t;
namespace gen = graph::gen;

class PdbfsThreads : public ::testing::TestWithParam<unsigned> {
 protected:
  void check(const BipartiteGraph& g) {
    const index_t want = matching::reference_maximum_cardinality(g);
    for (const bool greedy_start : {false, true}) {
      const matching::Matching init =
          greedy_start ? matching::cheap_matching(g) : matching::Matching(g);
      const PdbfsResult r = p_dbfs(g, init, {.num_threads = GetParam()});
      ASSERT_TRUE(r.matching.is_valid(g)) << r.matching.first_violation(g);
      EXPECT_EQ(r.matching.cardinality(), want);
      EXPECT_TRUE(matching::is_maximum(g, r.matching));
    }
  }
};

TEST_P(PdbfsThreads, EmptyGraph) { check(gen::empty_graph(4, 4)); }

TEST_P(PdbfsThreads, Star) { check(gen::star(9)); }

TEST_P(PdbfsThreads, CompleteSquare) { check(gen::complete_bipartite(8, 8)); }

TEST_P(PdbfsThreads, Chains) {
  check(gen::chain(2));
  check(gen::chain(64));
}

TEST_P(PdbfsThreads, RandomSparseManySeeds) {
  for (std::uint64_t seed = 0; seed < 8; ++seed)
    check(gen::random_uniform(80, 80, 260, seed));
}

TEST_P(PdbfsThreads, RandomRectangular) {
  check(gen::random_uniform(50, 120, 320, 5));
  check(gen::random_uniform(120, 50, 320, 5));
}

TEST_P(PdbfsThreads, PowerLaw) { check(gen::chung_lu(300, 300, 3.0, 2.4, 7)); }

TEST_P(PdbfsThreads, RoadLattice) { check(gen::road_network(13, 13, 0.85, 8)); }

TEST_P(PdbfsThreads, TraceStrip) { check(gen::trace_mesh(90, 3, 0.05, 9)); }

INSTANTIATE_TEST_SUITE_P(ThreadCounts, PdbfsThreads,
                         ::testing::Values(1u, 2u, 4u, 8u),
                         [](const auto& param_info) {
                           return "T" + std::to_string(param_info.param);
                         });

TEST(Pdbfs, StatsAccounting) {
  const BipartiteGraph g = gen::random_uniform(200, 200, 700, 3);
  PdbfsResult r = p_dbfs(g, matching::Matching(g), {.num_threads = 4});
  EXPECT_GT(r.stats.rounds, 0);
  EXPECT_EQ(r.stats.augmentations, r.matching.cardinality());
  EXPECT_GE(r.stats.total_ms, 0.0);
}

TEST(Pdbfs, RejectsInvalidInitialMatching) {
  const BipartiteGraph g = gen::complete_bipartite(2, 2);
  matching::Matching bad(g);
  bad.col_match[1] = 0;
  EXPECT_THROW((void)p_dbfs(g, bad), std::invalid_argument);
}

TEST(Pdbfs, OversubscribedThreadsStillCorrect) {
  // More threads than unmatched columns and than cores.
  const BipartiteGraph g = gen::random_uniform(40, 40, 120, 6);
  const index_t want = matching::reference_maximum_cardinality(g);
  const PdbfsResult r = p_dbfs(g, matching::Matching(g), {.num_threads = 16});
  EXPECT_EQ(r.matching.cardinality(), want);
}

}  // namespace
}  // namespace bpm::mc
