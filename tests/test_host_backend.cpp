// Conformance and property tests of the real multicore host backend
// (`device::HostParallelEngine`) behind the `device::Engine` seam:
//
//  * executor properties — launches cover every index exactly once on real
//    threads, balanced launches honour the edge-balanced partition, the
//    parallel exclusive scan matches the serial one (with `host_grain = 1`
//    so even tiny grids genuinely fan out onto the pool);
//  * native-time accounting — host streams measure wall clock and charge
//    no model time; sim streams do the reverse; engine stats fold both;
//  * backend parity — every device solver produces reference-maximum
//    cardinalities on both backends over randomized generator instances;
//  * backend-fit routing — `serve::EngineGroup` places tiny dispatches on
//    the fewest-lane engine and skewed / balanced-kernel / huge dispatches
//    on the host engine with the most workers, in a mixed pool.
//
// The concurrent-stream tests are written to be meaningful under TSan:
// several host threads drive streams of one shared host engine at once.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <numeric>
#include <random>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/solver.hpp"
#include "device/device.hpp"
#include "device/scan.hpp"
#include "graph/generators.hpp"
#include "matching/greedy.hpp"
#include "matching/verify.hpp"
#include "serve/engine_group.hpp"

namespace bpm {
namespace {

using device::Backend;
using device::Device;
using device::EngineDescriptor;
using device::ExecMode;
using device::HostParallelEngine;
using graph::BipartiteGraph;
namespace gen = graph::gen;

// A host engine whose serial cutoff is disabled: every launch, however
// tiny, is dispatched onto the pool — the configuration the executor
// properties (and TSan) want to exercise.
std::shared_ptr<HostParallelEngine> fanout_engine(unsigned threads) {
  return std::make_shared<HostParallelEngine>(EngineDescriptor{
      .mode = ExecMode::kConcurrent, .threads = threads, .host_grain = 1});
}

// ------------------------------------------------------- descriptors ----

TEST(HostBackend, ParseAndNameRoundTrip) {
  EXPECT_EQ(device::parse_backend("sim"), Backend::kSim);
  EXPECT_EQ(device::parse_backend("host"), Backend::kHost);
  EXPECT_THROW((void)device::parse_backend("cuda"), std::invalid_argument);
  EXPECT_EQ(device::backend_name(Backend::kSim), "sim");
  EXPECT_EQ(device::backend_name(Backend::kHost), "host");
}

TEST(HostBackend, DescriptorSummariesNameTheBackend) {
  HostParallelEngine host(3);
  EXPECT_EQ(host.backend(), Backend::kHost);
  EXPECT_EQ(host.descriptor().summary(), "host(workers=3)");
  // The descriptor's lanes are resolved to the actual pool size.
  EXPECT_EQ(host.descriptor().lanes, 3);

  device::Engine sim(ExecMode::kSequential, 2);
  // The legacy ctor follows the process default; pin expectations to it.
  if (sim.backend() == Backend::kSim)
    EXPECT_EQ(sim.descriptor().summary(), "sim(lanes=448,seq)");
  else
    EXPECT_NE(sim.descriptor().summary().find("seq"), std::string::npos);

  // The descriptor ctor forces the backend even if the caller forgot it.
  HostParallelEngine forced(EngineDescriptor{.backend = Backend::kSim});
  EXPECT_EQ(forced.backend(), Backend::kHost);
}

TEST(HostBackend, ExplicitBackendOverridesTheProcessDefault) {
  // Whatever BPM_DEVICE_BACKEND says, an explicit DeviceOptions backend
  // wins — the sim pin is what keeps model-validation tests meaningful
  // when CI reruns the suites under the host default.
  Device sim({.backend = Backend::kSim, .num_threads = 2});
  sim.launch_accounted(100, [](std::int64_t) -> std::int64_t { return 3; });
  EXPECT_GT(sim.modeled_ms(), 0.0);
  EXPECT_EQ(sim.engine()->backend(), Backend::kSim);

  Device host({.backend = Backend::kHost, .num_threads = 2});
  host.launch_accounted(100, [](std::int64_t) -> std::int64_t { return 3; });
  EXPECT_EQ(host.modeled_ms(), 0.0);
  EXPECT_EQ(host.engine()->backend(), Backend::kHost);
}

// ---------------------------------------------------------- executor ----

TEST(HostBackend, LaunchCoversEveryIndexExactlyOnce) {
  const auto engine = fanout_engine(4);
  Device dev(engine);
  constexpr std::int64_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  dev.launch(kN, [&](std::int64_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1,
                                                std::memory_order_relaxed);
  });
  for (std::int64_t i = 0; i < kN; ++i)
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  EXPECT_EQ(dev.launches(), 1u);
}

TEST(HostBackend, BalancedLaunchCoversEveryItemOnSkewedWork) {
  // A hub block up front — the regime the edge-balanced partition exists
  // for.  Every item must still run exactly once.
  std::vector<std::int64_t> work(2000, 1);
  for (std::size_t i = 0; i < 40; ++i) work[i] = 500;
  const auto engine = fanout_engine(4);
  Device dev(engine);
  const std::vector<std::int64_t> offsets =
      device::balanced_offsets(dev, work);
  ASSERT_EQ(offsets.size(), work.size() + 1);
  ASSERT_EQ(offsets.front(), 0);

  std::vector<std::atomic<int>> hits(work.size());
  dev.launch_balanced(offsets, [&](std::int64_t i) -> std::int64_t {
    hits[static_cast<std::size_t>(i)].fetch_add(1,
                                                std::memory_order_relaxed);
    return work[static_cast<std::size_t>(i)];
  });
  for (std::size_t i = 0; i < hits.size(); ++i)
    ASSERT_EQ(hits[i].load(), 1) << "item " << i;
}

TEST(HostBackend, ExclusiveScanMatchesSerialReference) {
  const auto engine = fanout_engine(4);
  Device dev(engine);
  std::mt19937 rng(17);
  for (const std::size_t n : {0UL, 1UL, 7UL, 100UL, 4097UL, 50'000UL}) {
    std::vector<std::int64_t> in(n);
    for (auto& v : in) v = static_cast<std::int64_t>(rng() % 9);
    std::vector<std::int64_t> expect(n);
    std::int64_t run = 0;
    for (std::size_t i = 0; i < n; ++i) {
      expect[i] = run;
      run += in[i];
    }
    std::vector<std::int64_t> out(n);
    EXPECT_EQ(device::exclusive_scan(dev, in, out), run) << "n=" << n;
    EXPECT_EQ(out, expect) << "n=" << n;
    // Aliasing in == out is part of the contract.
    std::vector<std::int64_t> aliased = in;
    EXPECT_EQ(device::exclusive_scan(dev, aliased, aliased), run);
    EXPECT_EQ(aliased, expect) << "aliased n=" << n;
  }
}

TEST(HostBackend, BalancedPartitionPropertiesOnHostScannedOffsets) {
  // Offsets built by the host executor's own parallel scan, partitioned
  // into every slot count the launch path might pick: bounds must start
  // at 0, end at n, stay monotone, and every chunk's work must be within
  // one maximum item work of the ideal.
  std::mt19937 rng(23);
  std::vector<std::int64_t> work(3000);
  std::int64_t max_item = 0;
  for (auto& v : work) {
    v = static_cast<std::int64_t>(rng() % 50);
    if (rng() % 97 == 0) v = 2000;  // occasional huge item
    max_item = std::max(max_item, v);
  }
  const auto engine = fanout_engine(4);
  Device dev(engine);
  const std::vector<std::int64_t> offsets =
      device::balanced_offsets(dev, work);
  const std::int64_t total = offsets.back();
  for (const std::int64_t parts : {1, 2, 3, 7, 16, 64}) {
    const std::vector<std::int64_t> bounds =
        device::balanced_partition(offsets, parts);
    ASSERT_EQ(static_cast<std::int64_t>(bounds.size()), parts + 1);
    EXPECT_EQ(bounds.front(), 0);
    EXPECT_EQ(bounds.back(), static_cast<std::int64_t>(work.size()));
    const std::int64_t ideal = total / parts + (total % parts != 0);
    for (std::int64_t p = 0; p < parts; ++p) {
      ASSERT_LE(bounds[static_cast<std::size_t>(p)],
                bounds[static_cast<std::size_t>(p) + 1]);
      const std::int64_t chunk =
          offsets[static_cast<std::size_t>(
              bounds[static_cast<std::size_t>(p) + 1])] -
          offsets[static_cast<std::size_t>(
              bounds[static_cast<std::size_t>(p)])];
      EXPECT_LE(chunk, ideal + max_item) << "parts=" << parts << " p=" << p;
    }
  }
}

// -------------------------------------------------- time accounting ----

TEST(HostBackend, HostStreamsMeasureWallAndChargeNoModel) {
  const auto engine = fanout_engine(2);
  {
    Device dev(engine);
    dev.launch(50'000, [](std::int64_t) {});
    dev.launch_accounted(50'000,
                         [](std::int64_t) -> std::int64_t { return 5; });
    EXPECT_EQ(dev.modeled_ms(), 0.0);  // the model is never consulted
    EXPECT_GT(dev.native_ms(), 0.0);   // measured in-kernel wall time
  }
  // The retired stream folds its native time into the engine's odometer.
  const device::EngineStats stats = engine->stats();
  EXPECT_EQ(stats.streams_retired, 1u);
  EXPECT_EQ(stats.launches, 2u);
  EXPECT_EQ(stats.modeled_ms, 0.0);
  EXPECT_GT(stats.native_ms, 0.0);
}

TEST(HostBackend, SimStreamsReportModeledTimeAsNative) {
  Device dev({.backend = Backend::kSim, .num_threads = 2});
  dev.launch_accounted(1000, [](std::int64_t) -> std::int64_t { return 2; });
  EXPECT_GT(dev.modeled_ms(), 0.0);
  EXPECT_DOUBLE_EQ(dev.native_ms(), dev.modeled_ms());
}

// ------------------------------------------------ concurrent streams ----

TEST(HostBackend, ConcurrentStreamsShareOneHostEngine) {
  // TSan scenario: several host threads each drive their own stream of
  // one shared host engine; every launch's writes must be complete and
  // the engine's odometer must account every stream.
  const auto engine = fanout_engine(3);
  constexpr int kStreams = 6, kLaunches = 20;
  constexpr std::int64_t kN = 512;
  std::atomic<std::int64_t> total{0};
  std::vector<std::thread> threads;
  threads.reserve(kStreams);
  for (int s = 0; s < kStreams; ++s)
    threads.emplace_back([&] {
      Device dev(engine);
      for (int l = 0; l < kLaunches; ++l) {
        std::vector<std::int64_t> marks(kN, 0);
        dev.launch(kN, [&](std::int64_t i) {
          marks[static_cast<std::size_t>(i)] = i + 1;
        });
        std::int64_t sum = 0;  // the launch barrier publishes the writes
        for (const std::int64_t m : marks) sum += m;
        total.fetch_add(sum == kN * (kN + 1) / 2 ? 1 : -1000000);
      }
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(total.load(), kStreams * kLaunches);
  const device::EngineStats stats = engine->stats();
  EXPECT_EQ(stats.streams_retired, static_cast<std::uint64_t>(kStreams));
  EXPECT_EQ(stats.launches,
            static_cast<std::uint64_t>(kStreams) * kLaunches);
}

// ------------------------------------------------------------ parity ----

std::vector<std::pair<std::string, BipartiteGraph>> parity_suite() {
  std::vector<std::pair<std::string, BipartiteGraph>> suite;
  suite.emplace_back("uniform", gen::random_uniform(150, 150, 600, 3));
  suite.emplace_back("power_law", gen::chung_lu(220, 220, 4.0, 2.3, 5));
  suite.emplace_back("hubs", gen::skewed_hubs(170, 200, 4, 0.3, 2.5, 7));
  suite.emplace_back("hub_block",
                     gen::skewed_hubs(180, 200, 24, 0.15, 2.0, 9, false));
  suite.emplace_back("mesh", gen::trace_mesh(60, 3, 0.06, 11));
  suite.emplace_back("planted", gen::planted_perfect(90, 1.5, 13));
  suite.emplace_back("star", gen::star(50));
  suite.emplace_back("empty", gen::empty_graph(20, 20));
  return suite;
}

TEST(HostBackendParity, DeviceSolversMatchReferenceOnBothBackends) {
  // The conformance gate: every device solver must reach the reference
  // maximum cardinality on the host backend exactly as it does on the
  // sim — the backends may only differ in *cost*, never in results.
  const auto suite = parity_suite();
  for (const char* name : {"g-pr", "g-pr-wb", "g-hk", "p-dbfs"}) {
    for (const auto& [gname, g] : suite) {
      const graph::index_t reference =
          matching::reference_maximum_cardinality(g);
      const matching::Matching init = matching::cheap_matching(g);
      for (const Backend backend : {Backend::kSim, Backend::kHost}) {
        auto solver = SolverRegistry::instance().create(name);
        ASSERT_NE(solver, nullptr) << name;
        Device dev({.backend = backend, .num_threads = 4});
        const SolveContext ctx{.device = &dev};
        const SolveResult r = solver->run(ctx, g, init);
        EXPECT_EQ(r.stats.cardinality, reference)
            << name << " on " << gname << " via "
            << device::backend_name(backend);
      }
    }
  }
}

TEST(HostBackendParity, SequentialHostModeStaysDeterministicAndCorrect) {
  // kSequential on the host backend is the debugging configuration: one
  // worker, indices in order, still measured wall time.
  const BipartiteGraph g = gen::skewed_hubs(120, 150, 4, 0.3, 2.0, 19);
  const graph::index_t reference = matching::reference_maximum_cardinality(g);
  auto solver = SolverRegistry::instance().create("g-pr");
  Device dev({.backend = Backend::kHost,
              .mode = ExecMode::kSequential,
              .num_threads = 1});
  const SolveContext ctx{.device = &dev};
  const SolveResult r =
      solver->run(ctx, g, matching::cheap_matching(g));
  EXPECT_EQ(r.stats.cardinality, reference);
  EXPECT_EQ(dev.modeled_ms(), 0.0);
}

// ------------------------------------------------- backend-fit routing ----

serve::EngineGroupOptions mixed_pool() {
  serve::EngineGroupOptions opt;
  opt.routing = serve::Routing::kBackendFit;
  opt.descriptors = {
      // A tiny sim engine (fewest lanes: the tiny-dispatch target — fewer
      // even than the host pool's resolved worker count), a full-width
      // sim engine, and the host engine (the heavy target).
      EngineDescriptor{.backend = Backend::kSim, .threads = 1, .lanes = 2},
      EngineDescriptor{.backend = Backend::kSim, .threads = 1, .lanes = 448},
      EngineDescriptor{.backend = Backend::kHost, .threads = 4},
  };
  return opt;
}

TEST(HostBackendFit, TinyDispatchesLandOnTheFewestLanes) {
  serve::EngineGroup group(mixed_pool());
  ASSERT_EQ(group.size(), 3u);
  const auto lease = group.acquire(serve::DispatchProfile{
      .fingerprint = 1, .estimated_work = 100.0, .edges = 50});
  EXPECT_EQ(lease.index(), 0u);  // the 2-lane sim engine
  EXPECT_EQ(lease.engine()->backend(), Backend::kSim);
}

TEST(HostBackendFit, SkewedAndBalancedDispatchesLandOnTheHostEngine) {
  serve::EngineGroup group(mixed_pool());
  const auto skewed = group.acquire(serve::DispatchProfile{
      .fingerprint = 2, .estimated_work = 5e5, .edges = 100'000,
      .degree_skew = 12.0});
  EXPECT_EQ(skewed.engine()->backend(), Backend::kHost);

  const auto balanced = group.acquire(serve::DispatchProfile{
      .fingerprint = 3, .estimated_work = 5e5, .edges = 100'000,
      .balanced_kernels = true});
  EXPECT_EQ(balanced.engine()->backend(), Backend::kHost);

  const auto huge = group.acquire(serve::DispatchProfile{
      .fingerprint = 4, .estimated_work = 5e7, .edges = 10'000'000});
  EXPECT_EQ(huge.engine()->backend(), Backend::kHost);
}

TEST(HostBackendFit, MediumDispatchesFallBackToLeastLoaded) {
  serve::EngineGroup group(mixed_pool());
  // Occupy engine 0 so the fallback has a load difference to see.
  const auto held = group.acquire(serve::DispatchProfile{
      .fingerprint = 5, .estimated_work = 1e6, .edges = 100});
  const auto medium = group.acquire(serve::DispatchProfile{
      .fingerprint = 6, .estimated_work = 5e5, .edges = 100'000,
      .degree_skew = 1.1});
  EXPECT_NE(medium.index(), held.index());
}

TEST(HostBackendFit, RetiredHostEngineFallsBackToLiveEngines) {
  serve::EngineGroup group(mixed_pool());
  group.retire(2);  // the host engine
  const auto skewed = group.acquire(serve::DispatchProfile{
      .fingerprint = 7, .estimated_work = 5e5, .edges = 100'000,
      .degree_skew = 12.0});
  // The heavy pick prefers host, but never routes to a retired engine:
  // among live sim engines it wants the most lanes.
  EXPECT_EQ(skewed.index(), 1u);
}

TEST(HostBackendFit, PreferredEngineOverridesThePolicyPick) {
  serve::EngineGroup group(mixed_pool());
  // A skewed heavy dispatch would go to the host engine (2) — but a
  // sharded dispatch pins its coordinator on shard 0's engine.
  const auto pinned = group.acquire(serve::DispatchProfile{
      .fingerprint = 8, .estimated_work = 5e5, .edges = 100'000,
      .degree_skew = 12.0, .preferred_engine = 0});
  EXPECT_EQ(pinned.index(), 0u);
  // Retired or out-of-range preferences fall back to the policy pick.
  group.retire(0);
  const auto fallback = group.acquire(serve::DispatchProfile{
      .fingerprint = 9, .estimated_work = 5e5, .edges = 100'000,
      .degree_skew = 12.0, .preferred_engine = 0});
  EXPECT_EQ(fallback.index(), 2u);
  const auto bogus = group.acquire(serve::DispatchProfile{
      .fingerprint = 10, .estimated_work = 5e5, .edges = 100'000,
      .degree_skew = 12.0, .preferred_engine = 99});
  EXPECT_EQ(bogus.index(), 2u);
}

TEST(HostBackendFit, LiveEnginesSkipRetiredUntilNoneRemain) {
  serve::EngineGroup group(mixed_pool());
  EXPECT_EQ(group.live_engines().size(), 3u);
  group.retire(1);
  const auto live = group.live_engines();
  ASSERT_EQ(live.size(), 2u);
  EXPECT_EQ(live[0], group.engine(0));
  EXPECT_EQ(live[1], group.engine(2));
  group.retire(0);
  group.retire(2);
  // All retired: the fleet falls back to the full pool (never-fail rule).
  EXPECT_EQ(group.live_engines().size(), 3u);
}

TEST(HostBackendFit, StatsReportEachEngineDescriptor) {
  serve::EngineGroup group(mixed_pool());
  const auto stats = group.stats();
  ASSERT_EQ(stats.size(), 3u);
  EXPECT_EQ(stats[0].descriptor.backend, Backend::kSim);
  EXPECT_EQ(stats[0].descriptor.lanes, 2);
  EXPECT_EQ(stats[2].descriptor.backend, Backend::kHost);
  EXPECT_EQ(stats[2].descriptor.summary().rfind("host(", 0), 0u);
}

}  // namespace
}  // namespace bpm
