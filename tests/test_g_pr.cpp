#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/g_pr.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "matching/greedy.hpp"
#include "matching/verify.hpp"

namespace bpm::gpu {
namespace {

using device::Device;
using device::ExecMode;
using graph::BipartiteGraph;
using graph::index_t;
namespace gen = graph::gen;

/// The full configuration grid: variant x execution mode.
using Config = std::tuple<GprVariant, ExecMode>;

std::string config_name(const ::testing::TestParamInfo<Config>& param_info) {
  const auto [variant, mode] = param_info.param;
  std::string name;
  switch (variant) {
    case GprVariant::kFirst: name = "First"; break;
    case GprVariant::kNoShrink: name = "NoShr"; break;
    case GprVariant::kShrink: name = "Shr"; break;
  }
  name += std::get<1>(param_info.param) == ExecMode::kSequential ? "_Seq"
                                                                 : "_Conc";
  return name;
}

class GprConfigs : public ::testing::TestWithParam<Config> {
 protected:
  GprOptions options() const {
    GprOptions opt;
    opt.variant = std::get<0>(GetParam());
    // A tiny shrink threshold so small test graphs exercise SHRKRNL.
    opt.shrink_threshold = 4;
    return opt;
  }

  Device make_device() const {
    return Device({.mode = std::get<1>(GetParam()), .num_threads = 4});
  }

  /// Solves from both empty and greedy starts and verifies maximality via
  /// the independent Berge certificate plus the reference cardinality.
  void check(const BipartiteGraph& g) {
    const index_t want = matching::reference_maximum_cardinality(g);
    for (const bool greedy_start : {false, true}) {
      Device dev = make_device();
      const matching::Matching init =
          greedy_start ? matching::cheap_matching(g) : matching::Matching(g);
      const GprResult r = g_pr(dev, g, init, options());
      ASSERT_TRUE(r.matching.is_valid(g)) << r.matching.first_violation(g);
      EXPECT_EQ(r.matching.cardinality(), want)
          << (greedy_start ? "greedy start" : "empty start");
      EXPECT_TRUE(matching::is_maximum(g, r.matching));
    }
  }
};

TEST_P(GprConfigs, EmptyGraph) { check(gen::empty_graph(4, 6)); }

TEST_P(GprConfigs, EdgelessSidesOfDifferentSizes) {
  check(gen::empty_graph(1, 9));
}

TEST_P(GprConfigs, SingleEdge) {
  check(graph::build_from_edges(1, 1, std::vector<graph::Edge>{{0, 0}}));
}

TEST_P(GprConfigs, Star) { check(gen::star(7)); }

TEST_P(GprConfigs, CompleteSquare) { check(gen::complete_bipartite(8, 8)); }

TEST_P(GprConfigs, CompleteRectangular) {
  check(gen::complete_bipartite(3, 11));
  check(gen::complete_bipartite(11, 3));
}

TEST_P(GprConfigs, ChainsOfManyLengths) {
  for (const index_t k : {1, 2, 3, 5, 16, 64, 200}) check(gen::chain(k));
}

TEST_P(GprConfigs, PlantedPerfect) {
  check(gen::planted_perfect(100, 1.5, 3));
}

TEST_P(GprConfigs, RandomSparseManySeeds) {
  for (std::uint64_t seed = 0; seed < 8; ++seed)
    check(gen::random_uniform(70, 70, 220, seed));
}

TEST_P(GprConfigs, RandomRectangular) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    check(gen::random_uniform(40, 100, 260, seed));
    check(gen::random_uniform(100, 40, 260, seed));
  }
}

TEST_P(GprConfigs, PowerLawWithUnmatchables) {
  check(gen::chung_lu(250, 250, 3.0, 2.3, 5));
}

TEST_P(GprConfigs, RoadLattice) { check(gen::road_network(14, 14, 0.85, 4)); }

TEST_P(GprConfigs, TraceStripLongPaths) {
  check(gen::trace_mesh(100, 3, 0.05, 4));
}

TEST_P(GprConfigs, KronSkewed) { check(gen::rmat(7, 6.0, 9)); }

TEST_P(GprConfigs, RelabelStrategySweepReachesMaximum) {
  const BipartiteGraph g = gen::chung_lu(200, 200, 4.0, 2.5, 7);
  const index_t want = matching::reference_maximum_cardinality(g);
  for (const RelabelStrategy strategy :
       {RelabelStrategy::kAdaptive, RelabelStrategy::kFixed}) {
    for (const double k : {0.3, 0.7, 1.0, 1.5, 2.0, 10.0, 50.0}) {
      Device dev = make_device();
      GprOptions opt = options();
      opt.strategy = strategy;
      opt.k = k;
      const GprResult r = g_pr(dev, g, matching::cheap_matching(g), opt);
      EXPECT_EQ(r.matching.cardinality(), want)
          << to_string(strategy) << " k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, GprConfigs,
    ::testing::Combine(::testing::Values(GprVariant::kFirst,
                                         GprVariant::kNoShrink,
                                         GprVariant::kShrink),
                       ::testing::Values(ExecMode::kSequential,
                                         ExecMode::kConcurrent)),
    config_name);

// ------------------------------------------------------------ invariants ----

TEST(Gpr, RejectsInvalidInitialMatching) {
  const BipartiteGraph g = gen::complete_bipartite(2, 2);
  matching::Matching bad(g);
  bad.col_match[0] = 1;  // one-sided
  Device dev({.mode = ExecMode::kSequential});
  EXPECT_THROW((void)g_pr(dev, g, bad), std::invalid_argument);
}

TEST(Gpr, StatsAccounting) {
  const BipartiteGraph g = gen::random_uniform(200, 200, 900, 11);
  Device dev({.mode = ExecMode::kSequential});
  const GprResult r = g_pr(dev, g, matching::cheap_matching(g));
  EXPECT_GE(r.stats.global_relabels, 1);     // forced at loop 0
  EXPECT_GE(r.stats.loops, 1);
  EXPECT_GT(r.stats.device_launches, 0);
  EXPECT_GE(r.stats.gr_level_kernels, r.stats.global_relabels);
  EXPECT_GE(r.stats.total_ms, 0.0);
}

TEST(Gpr, ShrinkFiresOnlyAboveThreshold) {
  const BipartiteGraph g = gen::chung_lu(600, 600, 2.5, 2.3, 13);
  const matching::Matching init(g);  // empty: large active list
  {
    Device dev({.mode = ExecMode::kSequential});
    GprOptions opt;
    opt.variant = GprVariant::kShrink;
    opt.shrink_threshold = 4;
    const GprResult r = g_pr(dev, g, init, opt);
    EXPECT_GT(r.stats.shrinks, 0);
  }
  {
    Device dev({.mode = ExecMode::kSequential});
    GprOptions opt;
    opt.variant = GprVariant::kShrink;
    opt.shrink_threshold = 1 << 30;  // effectively never
    const GprResult r = g_pr(dev, g, init, opt);
    EXPECT_EQ(r.stats.shrinks, 0);
  }
}

TEST(Gpr, NoShrinkVariantNeverShrinks) {
  const BipartiteGraph g = gen::random_uniform(100, 100, 300, 2);
  Device dev({.mode = ExecMode::kSequential});
  GprOptions opt;
  opt.variant = GprVariant::kNoShrink;
  opt.shrink_threshold = 1;
  const GprResult r = g_pr(dev, g, matching::Matching(g), opt);
  EXPECT_EQ(r.stats.shrinks, 0);
}

TEST(Gpr, RowMatchesNeverRegress) {
  // "Once a row is matched, it never becomes unmatched again" — check the
  // final matching covers at least every row the greedy init covered.
  const BipartiteGraph g = gen::chung_lu(300, 300, 4.0, 2.5, 17);
  const matching::Matching init = matching::cheap_matching(g);
  Device dev({.mode = ExecMode::kConcurrent, .num_threads = 4});
  const GprResult r = g_pr(dev, g, init);
  for (index_t u = 0; u < g.num_rows(); ++u) {
    if (init.row_match[static_cast<std::size_t>(u)] != matching::kUnmatched) {
      EXPECT_NE(r.matching.row_match[static_cast<std::size_t>(u)],
                matching::kUnmatched)
          << "row " << u << " lost its match";
    }
  }
}

TEST(Gpr, FixMatchingNormalisesAllColumns) {
  const BipartiteGraph g = gen::chung_lu(200, 200, 2.0, 2.3, 23);
  Device dev({.mode = ExecMode::kConcurrent, .num_threads = 4});
  const GprResult r = g_pr(dev, g, matching::Matching(g));
  for (index_t v = 0; v < g.num_cols(); ++v) {
    const index_t u = r.matching.col_match[static_cast<std::size_t>(v)];
    EXPECT_GE(u, matching::kUnmatched);  // no kUnmatchable leaks out
    if (u >= 0) {
      EXPECT_EQ(r.matching.row_match[static_cast<std::size_t>(u)], v);
    }
  }
}

TEST(Gpr, LoopGuardTriggersWhenForcedTiny) {
  // K_{1,16}: 16 columns fight over one row, stealing it from each other
  // for many loops — so an absurdly small bound must fire.
  const BipartiteGraph g = gen::complete_bipartite(1, 16);
  Device dev({.mode = ExecMode::kSequential});
  GprOptions opt;
  opt.max_loops = 1;  // unreasonably small on purpose
  EXPECT_THROW((void)g_pr(dev, g, matching::Matching(g), opt),
               std::runtime_error);
}

TEST(Gpr, PerfectInitialMatchingTerminatesImmediately) {
  const BipartiteGraph g = gen::complete_bipartite(6, 6);
  matching::Matching perfect(g);
  for (index_t i = 0; i < 6; ++i) perfect.match(i, i);
  Device dev({.mode = ExecMode::kSequential});
  const GprResult r = g_pr(dev, g, perfect);
  EXPECT_EQ(r.matching.cardinality(), 6);
  EXPECT_EQ(r.stats.global_relabels, 0);  // active list empty from the start
}

TEST(Gpr, DescribeNamesConfigurations) {
  GprOptions opt;
  opt.variant = GprVariant::kFirst;
  opt.strategy = RelabelStrategy::kFixed;
  const std::string d = opt.describe();
  EXPECT_NE(d.find("G-PR-First"), std::string::npos);
  EXPECT_NE(d.find("fix"), std::string::npos);
}

}  // namespace
}  // namespace bpm::gpu
